"""Shared-memory underlay transport: round-trip fidelity and lifecycle.

Pins the tentpole guarantees of :mod:`repro.topology.shm`:

* export → attach reproduces the CSR arrays (and everything derived from
  them) exactly, with zero-copy read-only views on the attach side;
* the exporting :class:`SharedUnderlay` is the single owner — unlink is
  idempotent, context-manager exit unlinks even on exceptions, and a
  half-failed export never leaves segments behind.
"""

from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.setup import ScenarioConfig, build_underlay
from repro.perf import counters
from repro.topology.physical import PhysicalTopology
from repro.topology.shm import attach_array, export_arrays

CONFIG = ScenarioConfig(physical_nodes=150, peers=24, avg_degree=6, seed=11)


def _segment_exists(name: str) -> bool:
    """Whether a named shared segment can still be attached."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


def _psm_segments() -> set:
    """Names of live POSIX shared-memory segments (Linux observation point)."""
    root = Path("/dev/shm")
    if not root.is_dir():
        pytest.skip("needs /dev/shm to observe segment lifecycle")
    return {p.name for p in root.iterdir() if p.name.startswith("psm_")}


class TestArrayRoundTrip:
    def test_export_attach_preserves_values_dtype_and_shape(self):
        arrays = {
            "ints": np.arange(13, dtype=np.int32),
            "floats": np.linspace(0.0, 2.5, 7, dtype=np.float64),
            "grid": np.arange(12, dtype=np.float64).reshape(4, 3),
        }
        segments, specs = export_arrays(arrays)
        attached = []
        try:
            for key, original in arrays.items():
                seg, view = attach_array(specs[key])
                attached.append(seg)
                np.testing.assert_array_equal(view, original)
                assert view.dtype == original.dtype
                assert view.shape == original.shape
        finally:
            for seg in attached:
                seg.close()
            for seg in segments:
                seg.close()
                seg.unlink()

    def test_attached_view_is_read_only_and_zero_copy(self):
        segments, specs = export_arrays({"a": np.arange(8, dtype=np.float64)})
        seg, view = attach_array(specs["a"])
        try:
            assert not view.flags.writeable
            assert not view.flags.owndata  # borrows the shared buffer
            with pytest.raises(ValueError):
                view[0] = 99.0
        finally:
            seg.close()
            for owned in segments:
                owned.close()
                owned.unlink()

    def test_failed_export_unwinds_earlier_segments(self):
        class Unconvertible:
            def __array__(self, dtype=None, copy=None):
                raise RuntimeError("cannot export this")

        before = _psm_segments()
        with pytest.raises(RuntimeError, match="cannot export"):
            export_arrays(
                {"good": np.arange(64, dtype=np.int32), "bad": Unconvertible()}
            )
        assert _psm_segments() <= before  # the good segment was unlinked


class TestTopologyRoundTrip:
    @pytest.fixture(scope="class")
    def physical(self):
        return build_underlay(CONFIG)

    def test_attached_topology_matches_exporter(self, physical):
        with physical.export_shared() as shared:
            attached = PhysicalTopology.attach_shared(shared.handle)
            assert attached.is_attached
            assert not physical.is_attached
            assert attached.num_nodes == physical.num_nodes
            assert attached.num_edges == physical.num_edges
            assert sorted(attached.edges()) == sorted(physical.edges())
            np.testing.assert_array_equal(attached.degrees(), physical.degrees())
            for source in (0, physical.num_nodes // 2, physical.num_nodes - 1):
                np.testing.assert_array_equal(
                    attached.delays_from(source), physical.delays_from(source)
                )
            u, v, delay = next(iter(physical.edges()))
            assert attached.has_edge(u, v)
            assert attached.link_delay(u, v) == delay

    def test_attach_increments_perf_counter(self, physical):
        with physical.export_shared() as shared:
            before = counters.copy()
            PhysicalTopology.attach_shared(shared.handle)
            assert counters.delta(before)["underlay_attaches"] == 1

    def test_handle_is_small_and_picklable(self, physical):
        import pickle

        with physical.export_shared() as shared:
            blob = pickle.dumps(shared.handle)
            assert len(blob) < 4096  # the whole point: no topology pickling
            assert pickle.loads(blob) == shared.handle


class TestLifecycle:
    @pytest.fixture()
    def physical(self):
        return build_underlay(CONFIG)

    def test_unlink_removes_segments_and_is_idempotent(self, physical):
        shared = physical.export_shared()
        names = shared.segment_names
        assert names and all(_segment_exists(n) for n in names)
        shared.unlink()
        assert not any(_segment_exists(n) for n in names)
        shared.unlink()  # second call is a no-op, not an error

    def test_context_manager_unlinks_on_exception(self, physical):
        names = []
        with pytest.raises(RuntimeError, match="trial exploded"):
            with physical.export_shared() as shared:
                names = shared.segment_names
                assert all(_segment_exists(n) for n in names)
                raise RuntimeError("trial exploded")
        assert names and not any(_segment_exists(n) for n in names)

    def test_attach_after_unlink_raises(self, physical):
        shared = physical.export_shared()
        handle = shared.handle
        shared.unlink()
        with pytest.raises(FileNotFoundError):
            PhysicalTopology.attach_shared(handle)
