"""Unit tests for the physical underlay."""

import numpy as np
import pytest

from repro.topology.physical import PhysicalTopology


def make_line(delays=(1.0, 2.0, 3.0, 4.0)):
    edges = [(i, i + 1) for i in range(len(delays))]
    return PhysicalTopology(len(delays) + 1, edges, list(delays))


class TestConstruction:
    def test_node_and_edge_counts(self):
        topo = make_line()
        assert topo.num_nodes == 5
        assert topo.num_edges == 4

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError, match="num_nodes"):
            PhysicalTopology(0, [], [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="same length"):
            PhysicalTopology(3, [(0, 1)], [1.0, 2.0])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="out of range"):
            PhysicalTopology(2, [(0, 5)], [1.0])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            PhysicalTopology(2, [(1, 1)], [1.0])

    def test_rejects_nonpositive_delay(self):
        with pytest.raises(ValueError, match="positive"):
            PhysicalTopology(2, [(0, 1)], [0.0])
        with pytest.raises(ValueError, match="positive"):
            PhysicalTopology(2, [(0, 1)], [-3.0])

    def test_duplicate_edges_keep_cheaper(self):
        topo = PhysicalTopology(2, [(0, 1), (1, 0)], [5.0, 2.0])
        assert topo.num_edges == 1
        assert topo.link_delay(0, 1) == 2.0

    def test_rejects_bad_coordinate_shape(self):
        with pytest.raises(ValueError, match="coordinates"):
            PhysicalTopology(3, [(0, 1)], [1.0], coordinates=np.zeros((2, 2)))

    def test_coordinates_stored(self):
        coords = np.arange(6, dtype=float).reshape(3, 2)
        topo = PhysicalTopology(3, [(0, 1)], [1.0], coordinates=coords)
        assert np.array_equal(topo.coordinates, coords)


class TestAccessors:
    def test_neighbors_sorted_tuples(self):
        topo = make_line()
        assert topo.neighbors(0) == (1,)
        assert topo.neighbors(2) == (1, 3)

    def test_degree(self):
        topo = make_line()
        assert topo.degree(0) == 1
        assert topo.degree(2) == 2

    def test_degrees_array(self):
        topo = make_line()
        assert list(topo.degrees()) == [1, 2, 2, 2, 1]

    def test_has_edge_both_orientations(self):
        topo = make_line()
        assert topo.has_edge(0, 1)
        assert topo.has_edge(1, 0)
        assert not topo.has_edge(0, 2)

    def test_link_delay(self):
        topo = make_line()
        assert topo.link_delay(2, 3) == 3.0
        assert topo.link_delay(3, 2) == 3.0

    def test_link_delay_missing_raises(self):
        topo = make_line()
        with pytest.raises(KeyError):
            topo.link_delay(0, 4)

    def test_edges_iteration(self):
        topo = make_line()
        edges = sorted(topo.edges())
        assert edges == [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0)]

    def test_nodes_iteration(self):
        assert list(make_line().nodes()) == [0, 1, 2, 3, 4]


class TestShortestPaths:
    def test_delay_is_path_sum(self):
        topo = make_line()
        assert topo.delay(0, 4) == pytest.approx(10.0)
        assert topo.delay(1, 3) == pytest.approx(5.0)

    def test_delay_zero_to_self(self):
        assert make_line().delay(2, 2) == 0.0

    def test_delay_symmetric(self):
        topo = make_line()
        assert topo.delay(0, 3) == topo.delay(3, 0)

    def test_delay_prefers_cheaper_route(self):
        # Triangle where the direct link is longer than the detour.
        topo = PhysicalTopology(3, [(0, 1), (1, 2), (0, 2)], [1.0, 1.0, 5.0])
        assert topo.delay(0, 2) == pytest.approx(2.0)

    def test_delays_from_vector(self):
        topo = make_line()
        vec = topo.delays_from(0)
        assert list(vec) == [0.0, 1.0, 3.0, 6.0, 10.0]

    def test_delays_from_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            make_line().delays_from(99)

    def test_unreachable_is_inf(self):
        topo = PhysicalTopology(4, [(0, 1), (2, 3)], [1.0, 1.0])
        assert np.isinf(topo.delay(0, 3))

    def test_path_endpoints_and_cost(self):
        topo = make_line()
        path = topo.path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert topo.path_delay(path) == pytest.approx(topo.delay(0, 3))

    def test_path_to_self(self):
        assert make_line().path(2, 2) == [2]

    def test_path_unreachable_raises(self):
        topo = PhysicalTopology(4, [(0, 1), (2, 3)], [1.0, 1.0])
        with pytest.raises(ValueError, match="unreachable"):
            topo.path(0, 2)

    def test_path_takes_cheaper_route(self):
        topo = PhysicalTopology(3, [(0, 1), (1, 2), (0, 2)], [1.0, 1.0, 5.0])
        assert topo.path(0, 2) == [0, 1, 2]

    def test_cache_eviction_does_not_change_results(self):
        topo = PhysicalTopology(
            6,
            [(i, i + 1) for i in range(5)],
            [1.0] * 5,
            cache_size=2,
        )
        first = [topo.delay(s, 5) for s in range(5)]
        second = [topo.delay(s, 5) for s in range(5)]
        assert first == second == [5.0, 4.0, 3.0, 2.0, 1.0]

    def test_delay_uses_either_cached_endpoint(self):
        topo = make_line()
        topo.delays_from(4)
        # 0 is not cached; the 4-rooted cache must serve (0, 4) correctly.
        assert topo.delay(0, 4) == pytest.approx(10.0)


class TestConnectivity:
    def test_connected_line(self):
        assert make_line().is_connected()

    def test_disconnected_pair(self):
        topo = PhysicalTopology(4, [(0, 1), (2, 3)], [1.0, 1.0])
        assert not topo.is_connected()

    def test_component_labels(self):
        topo = PhysicalTopology(4, [(0, 1), (2, 3)], [1.0, 1.0])
        labels = topo.component_labels()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_largest_component(self):
        topo = PhysicalTopology(5, [(0, 1), (1, 2), (3, 4)], [1.0] * 3)
        assert topo.largest_component_nodes() == [0, 1, 2]


class TestNetworkxInterop:
    def test_roundtrip(self):
        topo = make_line()
        back = PhysicalTopology.from_networkx(topo.to_networkx())
        assert back.num_nodes == topo.num_nodes
        assert sorted(back.edges()) == sorted(topo.edges())

    def test_from_networkx_requires_contiguous_labels(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(0, 5)
        with pytest.raises(ValueError, match="0..n-1"):
            PhysicalTopology.from_networkx(g)

    def test_from_networkx_default_weight(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(2))
        g.add_edge(0, 1)
        topo = PhysicalTopology.from_networkx(g)
        assert topo.link_delay(0, 1) == 1.0


class TestBatchedDijkstra:
    def test_delays_from_many_matches_single_source(self):
        topo = make_line()
        batched = topo.delays_from_many([0, 2, 4])
        for s, vec in batched.items():
            assert list(vec) == pytest.approx(list(topo.delays_from(s)))

    def test_delays_from_many_deduplicates_sources(self):
        topo = make_line()
        out = topo.delays_from_many([1, 1, 1, 3, 3])
        assert sorted(out) == [1, 3]

    def test_delays_from_many_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            make_line().delays_from_many([0, 99])

    def test_delays_from_many_caches_results(self):
        topo = make_line()
        topo.delays_from_many([0, 1, 2])
        assert set(topo.cached_sources()) >= {0, 1, 2}

    def test_delays_from_many_uncached_mode_leaves_lru_empty(self):
        topo = make_line()
        topo.delays_from_many([0, 1, 2], cache=False)
        assert topo.cached_sources() == []

    def test_warm_returns_solved_count_and_is_idempotent(self):
        topo = make_line()
        assert topo.warm([0, 1, 2]) == 3
        assert topo.warm([0, 1, 2]) == 0  # already resident

    def test_warm_grows_capacity_beyond_initial_lru(self):
        topo = PhysicalTopology(
            6, [(i, i + 1) for i in range(5)], [1.0] * 5, cache_size=2
        )
        topo.warm(range(6))
        assert topo.dijkstra_cache_size >= 6
        assert sorted(topo.cached_sources()) == [0, 1, 2, 3, 4, 5]

    def test_warm_chunking_covers_all_sources(self):
        topo = PhysicalTopology(
            8, [(i, i + 1) for i in range(7)], [1.0] * 7
        )
        assert topo.warm(range(8), chunk_size=3) == 8
        assert sorted(topo.cached_sources()) == list(range(8))

    def test_warm_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            make_line().warm([0], chunk_size=0)

    def test_batched_results_survive_path_queries(self):
        # A batched (distance-only) entry upgraded by a path() call must
        # stay consistent: path cost equals the batched delay.
        topo = make_line()
        vec = topo.delays_from_many([0])[0]
        path = topo.path(0, 4)
        assert topo.path_delay(path) == pytest.approx(float(vec[4]))


class TestLruCoherence:
    def test_delay_fast_path_refreshes_recency(self):
        # Regression: serving a cached source via delay() must refresh LRU
        # recency, otherwise hot sources get evicted as if cold.
        topo = PhysicalTopology(
            6, [(i, i + 1) for i in range(5)], [1.0] * 5, cache_size=2
        )
        topo.delays_from(0)   # cache: [0]
        topo.delays_from(1)   # cache: [0, 1]
        topo.delay(0, 5)      # fast path on 0 -> cache order: [1, 0]
        topo.delays_from(2)   # evicts 1, keeps hot 0
        cached = topo.cached_sources()
        assert 0 in cached and 1 not in cached

    def test_delay_fast_path_refreshes_recency_v_branch(self):
        topo = PhysicalTopology(
            6, [(i, i + 1) for i in range(5)], [1.0] * 5, cache_size=2
        )
        topo.delays_from(3)   # cache: [3]
        topo.delays_from(4)   # cache: [3, 4]
        topo.delay(0, 3)      # fast path via cached v=3 -> order: [4, 3]
        topo.delays_from(2)   # evicts 4, keeps hot 3
        cached = topo.cached_sources()
        assert 3 in cached and 4 not in cached

    def test_eviction_keeps_pred_cache_subset_of_dist_cache(self):
        topo = PhysicalTopology(
            8, [(i, i + 1) for i in range(7)], [1.0] * 7, cache_size=3
        )
        # Mix predecessor-bearing runs (path) with batched distance-only
        # solves, forcing evictions; the caches must never drift.
        for s in range(6):
            topo.path(s, 7)
        topo.delays_from_many([6, 7])
        topo.path(0, 7)
        # replint: disable=REP002 — this test *is* the coherence contract:
        # it may inspect the private LRUs to prove they never drift.
        assert set(topo._pred_cache) <= set(topo._dist_cache)
        # replint: disable=REP002 — same white-box coherence check
        assert len(topo._dist_cache) <= topo.dijkstra_cache_size
