"""Unit tests for the synthetic Gnutella-crawl snapshot substitute."""

import numpy as np
import pytest

from repro.topology.properties import power_law_exponent
from repro.topology.trace import (
    load_snapshot,
    save_snapshot,
    snapshot_from_adjacency,
    synthesize_gnutella_snapshot,
)


@pytest.fixture
def snapshot(ba_physical):
    return synthesize_gnutella_snapshot(
        ba_physical, n_peers=80, rng=np.random.default_rng(21)
    )


class TestSynthesize:
    def test_peer_count(self, snapshot):
        assert snapshot.num_peers == 80

    def test_connected(self, snapshot):
        assert snapshot.is_connected()

    def test_power_law_tail(self, ba_physical):
        ov = synthesize_gnutella_snapshot(
            ba_physical, n_peers=110, rng=np.random.default_rng(5)
        )
        degrees = [ov.degree(p) for p in ov.peers()]
        alpha = power_law_exponent(degrees, d_min=1)
        assert 1.5 < alpha < 3.5

    def test_distinct_hosts(self, snapshot):
        hosts = [snapshot.host_of(p) for p in snapshot.peers()]
        assert len(set(hosts)) == len(hosts)

    def test_too_many_peers(self, grid_physical):
        with pytest.raises(ValueError, match="physical hosts"):
            synthesize_gnutella_snapshot(grid_physical, n_peers=50)

    def test_deterministic(self, ba_physical):
        a = synthesize_gnutella_snapshot(
            ba_physical, n_peers=40, rng=np.random.default_rng(1)
        )
        b = synthesize_gnutella_snapshot(
            ba_physical, n_peers=40, rng=np.random.default_rng(1)
        )
        assert sorted(a.edges()) == sorted(b.edges())


class TestAdjacencyBuilder:
    def test_builds_given_edges(self, grid_physical):
        ov = snapshot_from_adjacency(
            grid_physical, {0: [1, 2], 1: [2]}, rng=np.random.default_rng(0)
        )
        assert sorted(ov.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_respects_explicit_hosts(self, grid_physical):
        ov = snapshot_from_adjacency(
            grid_physical, {0: [1]}, hosts={0: 5, 1: 9}
        )
        assert ov.host_of(0) == 5
        assert ov.host_of(1) == 9

    def test_ignores_self_loops(self, grid_physical):
        ov = snapshot_from_adjacency(
            grid_physical, {0: [0, 1]}, rng=np.random.default_rng(0)
        )
        assert sorted(ov.edges()) == [(0, 1)]


class TestSaveLoad:
    def test_roundtrip(self, snapshot, ba_physical, tmp_path):
        path = tmp_path / "crawl.txt"
        save_snapshot(snapshot, path)
        loaded = load_snapshot(ba_physical, path)
        assert loaded.peers() == snapshot.peers()
        assert sorted(loaded.edges()) == sorted(snapshot.edges())
        assert all(
            loaded.host_of(p) == snapshot.host_of(p) for p in snapshot.peers()
        )

    def test_header_and_comments_ignored(self, grid_physical, tmp_path):
        path = tmp_path / "crawl.txt"
        path.write_text("# peers: 2\n\n0: 0 1\n1: 1 0\n")
        ov = load_snapshot(grid_physical, path)
        assert ov.num_peers == 2
        assert ov.has_edge(0, 1)

    def test_malformed_line_raises(self, grid_physical, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0:\n")
        with pytest.raises(ValueError, match="malformed"):
            load_snapshot(grid_physical, path)
