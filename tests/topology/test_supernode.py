"""Unit tests for the two-tier (supernode) overlay."""

import numpy as np
import pytest

from repro.core.ace import AceProtocol
from repro.search.tree_routing import ace_strategy
from repro.topology.supernode import build_two_tier, two_tier_query


@pytest.fixture(scope="module")
def two_tier():
    from repro.topology.generators import barabasi_albert

    rng = np.random.default_rng(21)
    physical = barabasi_albert(500, m=2, rng=rng)
    return build_two_tier(physical, 120, supernode_fraction=0.25, rng=rng)


class TestConstruction:
    def test_tier_sizes(self, two_tier):
        assert two_tier.num_supernodes == 30
        assert two_tier.num_leaves == 90
        assert two_tier.num_peers == 120

    def test_backbone_connected(self, two_tier):
        assert two_tier.backbone.is_connected()

    def test_every_leaf_has_a_supernode(self, two_tier):
        for leaf in two_tier.leaf_parent:
            assert two_tier.backbone.has_peer(two_tier.leaf_parent[leaf])
            assert not two_tier.backbone.has_peer(leaf)

    def test_supernodes_are_highest_capacity(self, two_tier):
        super_caps = [
            two_tier.capacities[p] for p in two_tier.backbone.peers()
        ]
        leaf_caps = [two_tier.capacities[p] for p in two_tier.leaf_parent]
        assert min(super_caps) >= max(leaf_caps)

    def test_supernode_of(self, two_tier):
        sn = two_tier.backbone.peers()[0]
        assert two_tier.supernode_of(sn) == sn
        leaf = sorted(two_tier.leaf_parent)[0]
        assert two_tier.supernode_of(leaf) == two_tier.leaf_parent[leaf]

    def test_leaves_of_inverse(self, two_tier):
        leaf = sorted(two_tier.leaf_parent)[0]
        assert leaf in two_tier.leaves_of(two_tier.leaf_parent[leaf])

    def test_leaf_link_cost_positive(self, two_tier):
        leaf = sorted(two_tier.leaf_parent)[0]
        assert two_tier.leaf_link_cost(leaf) >= 0

    def test_validation(self):
        from repro.topology.generators import grid

        physical = grid(6, 6)
        with pytest.raises(ValueError):
            build_two_tier(physical, 20, supernode_fraction=0.0)
        with pytest.raises(ValueError):
            build_two_tier(physical, 20, supernode_fraction=1.0)

    def test_deterministic(self):
        from repro.topology.generators import barabasi_albert

        worlds = []
        for _ in range(2):
            rng = np.random.default_rng(9)
            physical = barabasi_albert(300, m=2, rng=np.random.default_rng(1))
            worlds.append(build_two_tier(physical, 60, rng=rng))
        assert sorted(worlds[0].backbone.edges()) == sorted(
            worlds[1].backbone.edges()
        )
        assert worlds[0].leaf_parent == worlds[1].leaf_parent


class TestQueries:
    def test_full_coverage(self, two_tier):
        leaf = sorted(two_tier.leaf_parent)[0]
        result = two_tier_query(two_tier, leaf, holders=[])
        assert result.search_scope == two_tier.num_peers
        assert result.supernodes_reached == frozenset(
            two_tier.backbone.peers()
        )

    def test_uplink_charged_for_leaves(self, two_tier):
        leaf = sorted(two_tier.leaf_parent)[0]
        result = two_tier_query(two_tier, leaf, holders=[])
        assert result.uplink_cost > 0 or two_tier.leaf_link_cost(leaf) == 0

    def test_no_uplink_for_supernode_source(self, two_tier):
        sn = two_tier.backbone.peers()[0]
        result = two_tier_query(two_tier, sn, holders=[])
        assert result.uplink_cost == 0.0
        assert result.entry_supernode == sn

    def test_finds_leaf_held_objects(self, two_tier):
        leaf = sorted(two_tier.leaf_parent)[0]
        holder = sorted(two_tier.leaf_parent)[-1]
        result = two_tier_query(two_tier, leaf, holders=[holder])
        assert result.success
        assert holder in result.holders_found

    def test_source_not_a_responder(self, two_tier):
        leaf = sorted(two_tier.leaf_parent)[0]
        result = two_tier_query(two_tier, leaf, holders=[leaf])
        assert not result.success

    def test_ttl_limits_backbone(self, two_tier):
        sn = two_tier.backbone.peers()[0]
        limited = two_tier_query(two_tier, sn, holders=[], ttl=1)
        assert len(limited.supernodes_reached) < two_tier.num_supernodes


class TestAceOnBackbone:
    def test_ace_reduces_supernode_traffic(self, two_tier):
        leaf = sorted(two_tier.leaf_parent)[0]
        before = two_tier_query(two_tier, leaf, holders=[])
        protocol = AceProtocol(two_tier.backbone, rng=np.random.default_rng(3))
        protocol.run(5)
        after = two_tier_query(
            two_tier, leaf, holders=[], strategy=ace_strategy(protocol)
        )
        assert after.traffic_cost < before.traffic_cost
        assert after.search_scope == before.search_scope
