"""Unit tests for the logical overlay."""

import numpy as np
import pytest

from repro.topology.generators import grid
from repro.topology.overlay import (
    Overlay,
    power_law_overlay,
    random_overlay,
    small_world_overlay,
)


@pytest.fixture
def empty_overlay(grid_physical):
    return Overlay(grid_physical)


class TestPeers:
    def test_add_peer(self, empty_overlay):
        empty_overlay.add_peer(0, 5)
        assert empty_overlay.has_peer(0)
        assert empty_overlay.host_of(0) == 5
        assert empty_overlay.num_peers == 1

    def test_add_duplicate_peer_raises(self, empty_overlay):
        empty_overlay.add_peer(0, 5)
        with pytest.raises(ValueError, match="already exists"):
            empty_overlay.add_peer(0, 6)

    def test_add_peer_bad_host(self, empty_overlay):
        with pytest.raises(ValueError, match="out of range"):
            empty_overlay.add_peer(0, 999)

    def test_remove_peer_clears_edges(self, triangle_overlay):
        triangle_overlay.remove_peer(0)
        assert not triangle_overlay.has_peer(0)
        assert triangle_overlay.num_edges == 1
        assert 0 not in triangle_overlay.neighbors(1)

    def test_peers_sorted(self, empty_overlay):
        for p, h in [(3, 1), (1, 2), (2, 3)]:
            empty_overlay.add_peer(p, h)
        assert empty_overlay.peers() == [1, 2, 3]

    def test_constructor_hosts(self, grid_physical):
        ov = Overlay(grid_physical, {7: 0, 9: 1})
        assert ov.peers() == [7, 9]


class TestEdges:
    def test_connect_symmetric(self, empty_overlay):
        empty_overlay.add_peer(0, 0)
        empty_overlay.add_peer(1, 1)
        assert empty_overlay.connect(0, 1) is True
        assert empty_overlay.has_edge(0, 1)
        assert empty_overlay.has_edge(1, 0)
        assert 1 in empty_overlay.neighbors(0)
        assert 0 in empty_overlay.neighbors(1)

    def test_connect_existing_returns_false(self, triangle_overlay):
        assert triangle_overlay.connect(0, 1) is False

    def test_connect_self_raises(self, triangle_overlay):
        with pytest.raises(ValueError, match="itself"):
            triangle_overlay.connect(0, 0)

    def test_connect_unknown_peer_raises(self, triangle_overlay):
        with pytest.raises(KeyError):
            triangle_overlay.connect(0, 99)

    def test_disconnect(self, triangle_overlay):
        assert triangle_overlay.disconnect(0, 1) is True
        assert not triangle_overlay.has_edge(0, 1)
        assert triangle_overlay.disconnect(0, 1) is False

    def test_disconnect_unknown_raises(self, triangle_overlay):
        with pytest.raises(KeyError):
            triangle_overlay.disconnect(0, 99)

    def test_degree_and_average(self, triangle_overlay):
        assert triangle_overlay.degree(0) == 2
        assert triangle_overlay.average_degree() == pytest.approx(2.0)

    def test_average_degree_empty(self, empty_overlay):
        assert empty_overlay.average_degree() == 0.0

    def test_edges_iteration_ordered_pairs(self, triangle_overlay):
        assert sorted(triangle_overlay.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_num_edges(self, triangle_overlay):
        assert triangle_overlay.num_edges == 3


class TestCosts:
    def test_cost_is_underlay_shortest_path(self, triangle_overlay):
        # Peers 0 and 1 live on grid hosts 0 and 3: 3 links of delay 10.
        assert triangle_overlay.cost(0, 1) == pytest.approx(30.0)

    def test_cost_symmetric(self, triangle_overlay):
        assert triangle_overlay.cost(1, 2) == triangle_overlay.cost(2, 1)

    def test_cost_same_host_zero(self, grid_physical):
        ov = Overlay(grid_physical, {0: 4, 1: 4})
        assert ov.cost(0, 1) == 0.0

    def test_cost_of_unconnected_pair_works(self, triangle_overlay):
        triangle_overlay.disconnect(0, 2)
        assert triangle_overlay.cost(0, 2) == pytest.approx(30.0)

    def test_costs_from_bulk_matches_single(self, triangle_overlay):
        bulk = triangle_overlay.costs_from(0, [1, 2])
        assert bulk[1] == pytest.approx(triangle_overlay.cost(0, 1))
        assert bulk[2] == pytest.approx(triangle_overlay.cost(0, 2))

    def test_costs_from_cached_pairs_skip_underlay(self, triangle_overlay):
        triangle_overlay.cost(0, 1)
        triangle_overlay.cost(0, 2)
        bulk = triangle_overlay.costs_from(0, [1, 2])
        assert bulk[1] == pytest.approx(30.0)

    def test_total_edge_cost(self, triangle_overlay):
        expected = sum(
            triangle_overlay.cost(u, v) for u, v in triangle_overlay.edges()
        )
        assert triangle_overlay.total_edge_cost() == pytest.approx(expected)

    def test_triangle_costs_exact(self, triangle_overlay):
        # Hosts 0, 3, 12 on a 4x4 grid with delay-10 links.
        assert triangle_overlay.cost(0, 1) == pytest.approx(30.0)
        assert triangle_overlay.cost(0, 2) == pytest.approx(30.0)
        assert triangle_overlay.cost(1, 2) == pytest.approx(60.0)


class TestConnectivity:
    def test_component_of(self, triangle_overlay):
        assert triangle_overlay.component_of(0) == {0, 1, 2}

    def test_components_split(self, grid_physical):
        ov = Overlay(grid_physical, {i: i for i in range(4)})
        ov.connect(0, 1)
        ov.connect(2, 3)
        comps = ov.components()
        assert len(comps) == 2
        assert {0, 1} in comps and {2, 3} in comps

    def test_is_connected(self, triangle_overlay):
        assert triangle_overlay.is_connected()
        triangle_overlay.disconnect(0, 1)
        triangle_overlay.disconnect(1, 2)
        assert not triangle_overlay.is_connected()

    def test_empty_overlay_connected(self, empty_overlay):
        assert empty_overlay.is_connected()


class TestCopy:
    def test_copy_is_independent(self, triangle_overlay):
        clone = triangle_overlay.copy()
        clone.disconnect(0, 1)
        assert triangle_overlay.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_copy_preserves_structure(self, triangle_overlay):
        clone = triangle_overlay.copy()
        assert clone.peers() == triangle_overlay.peers()
        assert sorted(clone.edges()) == sorted(triangle_overlay.edges())

    def test_copy_shares_physical(self, triangle_overlay):
        assert triangle_overlay.copy().physical is triangle_overlay.physical


class TestNetworkxExport:
    def test_to_networkx(self, triangle_overlay):
        g = triangle_overlay.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3
        assert g[0][1]["cost"] == pytest.approx(30.0)
        assert g.nodes[1]["host"] == 3


@pytest.mark.parametrize(
    "factory",
    [random_overlay, power_law_overlay, small_world_overlay],
    ids=["random", "power_law", "small_world"],
)
class TestOverlayGenerators:
    def test_connected(self, ba_physical, factory):
        ov = factory(ba_physical, 50, avg_degree=6, rng=np.random.default_rng(3))
        assert ov.is_connected()

    def test_peer_count(self, ba_physical, factory):
        ov = factory(ba_physical, 50, avg_degree=6, rng=np.random.default_rng(3))
        assert ov.num_peers == 50

    def test_average_degree_close(self, ba_physical, factory):
        ov = factory(ba_physical, 50, avg_degree=6, rng=np.random.default_rng(3))
        assert 4.0 <= ov.average_degree() <= 7.0

    def test_distinct_hosts(self, ba_physical, factory):
        ov = factory(ba_physical, 50, avg_degree=6, rng=np.random.default_rng(3))
        hosts = [ov.host_of(p) for p in ov.peers()]
        assert len(set(hosts)) == len(hosts)

    def test_deterministic(self, ba_physical, factory):
        a = factory(ba_physical, 30, avg_degree=4, rng=np.random.default_rng(9))
        b = factory(ba_physical, 30, avg_degree=4, rng=np.random.default_rng(9))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_too_many_peers_raises(self, grid_physical, factory):
        with pytest.raises(ValueError):
            factory(grid_physical, 100, avg_degree=4, rng=np.random.default_rng(0))


class TestGeneratorEdgeCases:
    def test_random_overlay_rejects_tiny_degree(self, ba_physical):
        with pytest.raises(ValueError, match="avg_degree"):
            random_overlay(ba_physical, 10, avg_degree=1)

    def test_small_world_rejects_bad_triad_probability(self, ba_physical):
        with pytest.raises(ValueError, match="triad_probability"):
            small_world_overlay(
                ba_physical, 20, triad_probability=1.5, rng=np.random.default_rng(0)
            )

    def test_small_world_clusters_more_than_random(self, ba_physical):
        from repro.topology.properties import clustering_coefficient

        rng = np.random.default_rng(4)
        sw = small_world_overlay(ba_physical, 60, avg_degree=6, rng=rng)
        rnd = random_overlay(ba_physical, 60, avg_degree=6, rng=rng)
        assert clustering_coefficient(sw) > 2 * clustering_coefficient(rnd)


class TestEdgeCostCache:
    """The persistent per-edge cost cache and its invalidation hooks."""

    def test_warm_edge_costs_fills_every_edge(self, triangle_overlay):
        filled = triangle_overlay.warm_edge_costs()
        assert filled == triangle_overlay.num_edges
        assert triangle_overlay.cached_edge_costs == triangle_overlay.num_edges

    def test_warm_edge_costs_idempotent(self, triangle_overlay):
        triangle_overlay.warm_edge_costs()
        assert triangle_overlay.warm_edge_costs() == 0

    def test_warmed_costs_match_underlay(self, triangle_overlay):
        triangle_overlay.warm_edge_costs()
        phys = triangle_overlay.physical
        for u, v in triangle_overlay.edges():
            hu, hv = triangle_overlay.host_of(u), triangle_overlay.host_of(v)
            assert triangle_overlay.cost(u, v) == pytest.approx(phys.delay(hu, hv))

    def test_warm_edge_costs_chunked(self, ba_physical, rng):
        ov = small_world_overlay(ba_physical, 30, avg_degree=6, rng=rng)
        assert ov.warm_edge_costs(chunk_size=4) == ov.num_edges
        for u, v in ov.edges():
            hu, hv = ov.host_of(u), ov.host_of(v)
            assert ov.cost(u, v) == pytest.approx(ba_physical.delay(hu, hv))

    def test_disconnect_invalidates_entry(self, triangle_overlay):
        triangle_overlay.warm_edge_costs()
        triangle_overlay.disconnect(0, 1)
        assert triangle_overlay.cached_edge_costs == 2

    def test_remove_peer_invalidates_incident_entries(self, triangle_overlay):
        triangle_overlay.warm_edge_costs()
        triangle_overlay.remove_peer(0)
        assert triangle_overlay.cached_edge_costs == 1  # only edge 1-2 left

    def test_rewired_edge_reflects_new_underlay_delay(self, grid_physical):
        # ACE-style rewiring: cut 0-1, connect 0-2; the cached cost of the
        # old edge must not leak into the new one.
        ov = Overlay(grid_physical, {0: 0, 1: 3, 2: 12, 3: 15})
        ov.connect(0, 1)
        ov.warm_edge_costs()
        assert ov.cost(0, 1) == pytest.approx(30.0)
        ov.disconnect(0, 1)
        ov.connect(0, 2)
        assert ov.cost(0, 2) == pytest.approx(grid_physical.delay(0, 12))
        ov.warm_edge_costs()
        assert ov.cost(0, 2) == pytest.approx(30.0)

    def test_rejoin_on_different_host_gets_fresh_costs(self, grid_physical):
        # Churn: peer 1 leaves host 3 and rejoins on host 15; a stale cached
        # edge cost for (0, 1) would report the old host's delay.
        ov = Overlay(grid_physical, {0: 0, 1: 3})
        ov.connect(0, 1)
        ov.warm_edge_costs()
        assert ov.cost(0, 1) == pytest.approx(30.0)
        ov.remove_peer(1)
        ov.add_peer(1, 15)
        ov.connect(0, 1)
        ov.warm_edge_costs()
        assert ov.cost(0, 1) == pytest.approx(grid_physical.delay(0, 15))
        assert ov.cost(0, 1) != pytest.approx(30.0)

    def test_connect_seeds_cost_from_host_pair_cache(self, triangle_overlay):
        triangle_overlay.warm_edge_costs()
        triangle_overlay.disconnect(0, 1)
        # Reconnecting a known host pair fills the entry without any
        # underlay work.
        triangle_overlay.connect(0, 1)
        assert triangle_overlay.cached_edge_costs == 3

    def test_same_host_edge_costs_zero(self, grid_physical):
        ov = Overlay(grid_physical, {0: 5, 1: 5})
        ov.connect(0, 1)
        assert ov.warm_edge_costs() == 0  # filled inline, no underlay solve
        assert ov.cost(0, 1) == 0.0

    def test_invalidate_edge_costs_clears_all(self, triangle_overlay):
        triangle_overlay.warm_edge_costs()
        triangle_overlay.invalidate_edge_costs()
        assert triangle_overlay.cached_edge_costs == 0
        # Costs still correct afterwards (recomputed through host-pair cache).
        assert triangle_overlay.cost(0, 1) == pytest.approx(30.0)

    def test_copy_gets_private_edge_cost_cache(self, triangle_overlay):
        triangle_overlay.warm_edge_costs()
        clone = triangle_overlay.copy()
        clone.disconnect(0, 1)
        assert clone.cached_edge_costs == 2
        assert triangle_overlay.cached_edge_costs == 3

    def test_warm_sources_makes_peer_rooted_lookups_resident(self, triangle_overlay):
        solved = triangle_overlay.warm_sources([0, 1, 2])
        assert solved == 3
        hosts = {triangle_overlay.host_of(p) for p in (0, 1, 2)}
        assert hosts <= set(triangle_overlay.physical.cached_sources())

    def test_costs_from_populates_edge_cache_for_neighbors_only(
        self, triangle_overlay
    ):
        triangle_overlay.disconnect(1, 2)
        triangle_overlay.costs_from(0, [1, 2])  # both still neighbors of 0
        triangle_overlay.costs_from(1, [2])     # 2 is not 1's neighbor now
        assert triangle_overlay.cached_edge_costs == 2
