"""Unit tests for DOT export."""

import numpy as np
import pytest

from repro.topology.dot_export import overlay_to_dot, physical_to_dot, write_dot
from repro.topology.generators import grid
from repro.topology.overlay import Overlay


@pytest.fixture
def small_world():
    physical = grid(3, 3, delay=10.0)
    ov = Overlay(physical, {0: 0, 1: 2, 2: 8})
    ov.connect(0, 1)
    ov.connect(1, 2)
    return physical, ov


class TestOverlayDot:
    def test_structure(self, small_world):
        _physical, ov = small_world
        dot = overlay_to_dot(ov)
        assert dot.startswith('graph "overlay" {')
        assert dot.rstrip().endswith("}")
        assert "0 -- 1" in dot
        assert "1 -- 2" in dot

    def test_costs_annotated(self, small_world):
        _physical, ov = small_world
        dot = overlay_to_dot(ov, show_costs=True)
        assert f'label="{round(ov.cost(0, 1), 1)}"' in dot

    def test_costs_suppressed(self, small_world):
        _physical, ov = small_world
        dot = overlay_to_dot(ov, show_costs=False)
        assert "0 -- 1;" in dot

    def test_as_coloring(self, small_world):
        _physical, ov = small_world
        labels = np.array([0, 0, 1, 1, 1, 1, 2, 2, 2])
        dot = overlay_to_dot(ov, as_labels=labels)
        assert "fillcolor=" in dot
        assert 'tooltip="AS 0"' in dot
        assert 'tooltip="AS 2"' in dot

    def test_highlighting(self, small_world):
        _physical, ov = small_world
        dot = overlay_to_dot(ov, highlight_edges=[(1, 0)])
        assert "color=red" in dot
        # Only one of the two edges highlighted.
        assert dot.count("penwidth=2.5") == 1

    def test_every_peer_declared(self, small_world):
        _physical, ov = small_world
        dot = overlay_to_dot(ov)
        for peer in ov.peers():
            assert f'  {peer} [label="{peer}"' in dot


class TestPhysicalDot:
    def test_structure(self, small_world):
        physical, _ov = small_world
        dot = physical_to_dot(physical)
        assert dot.startswith('graph "underlay" {')
        assert "0 -- 1" in dot

    def test_positions_from_coordinates(self, small_world):
        physical, _ov = small_world
        dot = physical_to_dot(physical)
        assert "pos=" in dot

    def test_size_cap(self):
        big = grid(25, 25)
        with pytest.raises(ValueError, match="max_nodes"):
            physical_to_dot(big, max_nodes=100)
        assert physical_to_dot(big, max_nodes=1000)


class TestWriteDot:
    def test_roundtrip(self, small_world, tmp_path):
        _physical, ov = small_world
        path = write_dot(overlay_to_dot(ov), tmp_path / "g.dot")
        assert path.read_text().startswith("graph")
