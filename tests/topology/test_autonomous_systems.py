"""Unit tests for transit-stub underlays and AS traffic accounting."""

import numpy as np
import pytest

from repro.search.flooding import blind_flooding_strategy, propagate
from repro.topology.autonomous_systems import (
    AsTrafficReport,
    as_of_hosts,
    as_traffic_report,
    transit_stub,
)
from repro.topology.overlay import Overlay, random_overlay


@pytest.fixture(scope="module")
def ts_world():
    rng = np.random.default_rng(11)
    topo, labels = transit_stub(
        transit_nodes=8, stubs_per_transit=2, stub_size=10, rng=rng
    )
    return topo, labels


class TestTransitStub:
    def test_host_count(self, ts_world):
        topo, labels = ts_world
        assert topo.num_nodes == 8 + 8 * 2 * 10
        assert len(labels) == topo.num_nodes

    def test_connected(self, ts_world):
        topo, _labels = ts_world
        assert topo.is_connected()

    def test_transit_is_as_zero(self, ts_world):
        _topo, labels = ts_world
        assert (labels[:8] == 0).all()

    def test_stub_count(self, ts_world):
        _topo, labels = ts_world
        assert labels.max() == 16

    def test_stub_sizes(self, ts_world):
        _topo, labels = ts_world
        for stub in range(1, 17):
            assert (labels == stub).sum() == 10

    def test_intra_stub_cheaper_than_crossing(self, ts_world):
        topo, labels = ts_world
        # Two hosts of stub 1 vs one host of stub 1 and one of stub 2.
        stub1 = np.flatnonzero(labels == 1)
        stub2 = np.flatnonzero(labels == 2)
        intra = topo.delay(int(stub1[0]), int(stub1[1]))
        inter = topo.delay(int(stub1[0]), int(stub2[0]))
        assert intra < inter

    def test_validation(self):
        with pytest.raises(ValueError):
            transit_stub(transit_nodes=1)
        with pytest.raises(ValueError):
            transit_stub(stub_size=0)

    def test_deterministic(self):
        a, la = transit_stub(transit_nodes=4, stubs_per_transit=2, stub_size=5,
                             rng=np.random.default_rng(3))
        b, lb = transit_stub(transit_nodes=4, stubs_per_transit=2, stub_size=5,
                             rng=np.random.default_rng(3))
        assert sorted(a.edges()) == sorted(b.edges())
        assert (la == lb).all()


class TestAsAccounting:
    def test_as_of_hosts(self, ts_world):
        topo, labels = ts_world
        ov = Overlay(topo, {0: 8, 1: 9})  # two hosts in the first stub
        ov.connect(0, 1)
        mapping = as_of_hosts(labels, ov)
        assert mapping[0] == labels[8]
        assert mapping[1] == labels[9]

    def test_link_classification(self, ts_world):
        topo, labels = ts_world
        stub1 = [int(h) for h in np.flatnonzero(labels == 1)[:2]]
        stub2 = [int(h) for h in np.flatnonzero(labels == 2)[:1]]
        ov = Overlay(topo, {0: stub1[0], 1: stub1[1], 2: stub2[0]})
        ov.connect(0, 1)  # intra
        ov.connect(0, 2)  # inter
        report = as_traffic_report(labels, ov)
        assert report.intra_as_links == 1
        assert report.inter_as_links == 1
        assert report.intra_link_fraction == pytest.approx(0.5)

    def test_traffic_classification_with_propagation(self, ts_world):
        topo, labels = ts_world
        stub1 = [int(h) for h in np.flatnonzero(labels == 1)[:2]]
        stub2 = [int(h) for h in np.flatnonzero(labels == 2)[:1]]
        ov = Overlay(topo, {0: stub1[0], 1: stub1[1], 2: stub2[0]})
        ov.connect(0, 1)
        ov.connect(1, 2)
        prop = propagate(ov, 0, blind_flooding_strategy(ov), ttl=None)
        report = as_traffic_report(labels, ov, prop)
        assert report.intra_as_traffic == pytest.approx(ov.cost(0, 1))
        assert report.inter_as_traffic == pytest.approx(ov.cost(1, 2))
        assert 0 < report.inter_traffic_fraction < 1

    def test_empty_overlay(self, ts_world):
        topo, labels = ts_world
        report = as_traffic_report(labels, Overlay(topo))
        assert report.total_links == 0
        assert report.intra_link_fraction == 0.0
        assert report.inter_traffic_fraction == 0.0


class TestPaperMotivation:
    def test_random_overlay_mostly_crosses_as_borders(self, ts_world):
        """The intro's measurement: 2-5% of Gnutella connections stay
        inside one AS.  A random overlay on a transit-stub underlay shows
        the same order of magnitude."""
        topo, labels = ts_world
        ov = random_overlay(topo, 80, avg_degree=6, rng=np.random.default_rng(5))
        report = as_traffic_report(labels, ov)
        assert report.intra_link_fraction < 0.2

    def test_ace_increases_as_locality(self, ts_world):
        from repro.core.ace import AceProtocol
        from repro.topology.overlay import small_world_overlay

        topo, labels = ts_world
        ov = small_world_overlay(topo, 80, avg_degree=8, rng=np.random.default_rng(5))
        before = as_traffic_report(labels, ov).intra_link_fraction
        protocol = AceProtocol(ov, rng=np.random.default_rng(5))
        protocol.run(6)
        after = as_traffic_report(labels, ov).intra_link_fraction
        assert after > before
