"""Unit tests for the BRITE-style topology generators."""

import numpy as np
import pytest

from repro.topology.generators import (
    barabasi_albert,
    glp,
    grid,
    paper_underlay,
    watts_strogatz,
    waxman,
)

ALL_GENERATORS = [
    ("waxman", lambda rng: waxman(60, rng=rng)),
    ("ba", lambda rng: barabasi_albert(60, m=2, rng=rng)),
    ("glp", lambda rng: glp(60, m=2, rng=rng)),
    ("ws", lambda rng: watts_strogatz(60, k=4, rewire_p=0.2, rng=rng)),
]


@pytest.mark.parametrize("name,factory", ALL_GENERATORS)
class TestCommonProperties:
    def test_connected(self, name, factory):
        topo = factory(np.random.default_rng(7))
        assert topo.is_connected()

    def test_node_count(self, name, factory):
        topo = factory(np.random.default_rng(7))
        assert topo.num_nodes == 60

    def test_positive_delays(self, name, factory):
        topo = factory(np.random.default_rng(7))
        assert all(d > 0 for _, _, d in topo.edges())

    def test_coordinates_provided(self, name, factory):
        topo = factory(np.random.default_rng(7))
        assert topo.coordinates is not None
        assert topo.coordinates.shape == (60, 2)

    def test_deterministic_from_seed(self, name, factory):
        a = factory(np.random.default_rng(42))
        b = factory(np.random.default_rng(42))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self, name, factory):
        a = factory(np.random.default_rng(1))
        b = factory(np.random.default_rng(2))
        # Edge sets should almost surely differ for random models.
        assert sorted(a.edges()) != sorted(b.edges())

    def test_delays_match_euclidean_distance(self, name, factory):
        topo = factory(np.random.default_rng(7))
        coords = topo.coordinates
        for u, v, d in topo.edges():
            expected = max(float(np.hypot(*(coords[u] - coords[v]))), 1.0)
            assert d == pytest.approx(expected)


class TestWaxman:
    def test_min_nodes(self):
        with pytest.raises(ValueError):
            waxman(1)

    def test_higher_alpha_means_more_edges(self):
        low = waxman(80, alpha=0.05, rng=np.random.default_rng(3))
        high = waxman(80, alpha=0.6, rng=np.random.default_rng(3))
        assert high.num_edges > low.num_edges


class TestBarabasiAlbert:
    def test_requires_n_greater_than_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, m=3)

    def test_requires_positive_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, m=0)

    def test_edge_count_close_to_mn(self):
        topo = barabasi_albert(100, m=2, rng=np.random.default_rng(5))
        # m links per arriving node plus the seed clique.
        assert abs(topo.num_edges - 2 * 100) <= 10

    def test_heavy_tailed_degrees(self):
        topo = barabasi_albert(300, m=2, rng=np.random.default_rng(5))
        degrees = topo.degrees()
        assert degrees.max() >= 5 * np.median(degrees)


class TestGlp:
    def test_requires_enough_nodes(self):
        with pytest.raises(ValueError):
            glp(3, m=2)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            glp(30, p=1.0)
        with pytest.raises(ValueError):
            glp(30, p=-0.1)

    def test_all_nodes_attached(self):
        topo = glp(60, m=2, rng=np.random.default_rng(11))
        assert all(topo.degree(n) >= 1 for n in topo.nodes())


class TestWattsStrogatz:
    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            watts_strogatz(20, k=3)

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            watts_strogatz(4, k=4)

    def test_no_rewire_is_ring_lattice(self):
        topo = watts_strogatz(20, k=4, rewire_p=0.0, rng=np.random.default_rng(0))
        assert topo.num_edges == 20 * 4 // 2
        assert all(topo.degree(n) == 4 for n in topo.nodes())

    def test_edge_count_preserved_under_rewiring(self):
        topo = watts_strogatz(40, k=4, rewire_p=0.5, rng=np.random.default_rng(0))
        # Rewiring may collide and fall back to the original edge, so the
        # count never exceeds the lattice's and stays close to it.
        assert 40 * 2 - 8 <= topo.num_edges <= 40 * 2


class TestGrid:
    def test_shape_and_edges(self):
        topo = grid(3, 4, delay=10.0)
        assert topo.num_nodes == 12
        # 3 rows x 3 horizontal + 2 x 4 vertical.
        assert topo.num_edges == 3 * 3 + 2 * 4

    def test_uniform_delay(self):
        topo = grid(2, 2, delay=7.0)
        assert all(d == 7.0 for _, _, d in topo.edges())

    def test_manhattan_distances(self):
        topo = grid(3, 3, delay=10.0)
        assert topo.delay(0, 8) == pytest.approx(40.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            grid(0, 3)


class TestPaperUnderlay:
    def test_small_instance(self):
        topo = paper_underlay(n=200, rng=np.random.default_rng(1))
        assert topo.num_nodes == 200
        assert topo.is_connected()
