"""Unit tests for topology property analysis."""

import math

import numpy as np
import pytest

from repro.topology.generators import barabasi_albert, grid, watts_strogatz
from repro.topology.overlay import Overlay
from repro.topology.properties import (
    TopologyReport,
    analyze,
    characteristic_path_length,
    clustering_coefficient,
    degree_histogram,
    power_law_exponent,
    small_world_sigma,
)


def overlay_from_edges(physical, edges, n):
    ov = Overlay(physical, {i: i for i in range(n)})
    for u, v in edges:
        ov.connect(u, v)
    return ov


class TestDegreeHistogram:
    def test_grid(self):
        hist = degree_histogram(grid(3, 3))
        assert hist == {2: 4, 3: 4, 4: 1}

    def test_overlay_counts(self, grid_physical):
        ov = overlay_from_edges(grid_physical, [(0, 1), (1, 2)], 3)
        assert degree_histogram(ov) == {1: 2, 2: 1}


class TestPowerLawExponent:
    def test_known_sequence(self):
        # alpha = 1 + n / sum(ln(d / (dmin - 0.5))) with dmin = 1.
        degrees = [1, 2, 4, 8]
        expected = 1 + 4 / sum(math.log(d / 0.5) for d in degrees)
        assert power_law_exponent(degrees, d_min=1) == pytest.approx(expected)

    def test_respects_dmin(self):
        degrees = [1, 1, 1, 4, 8]
        alpha = power_law_exponent(degrees, d_min=4)
        expected = 1 + 2 / (math.log(4 / 3.5) + math.log(8 / 3.5))
        assert alpha == pytest.approx(expected)

    def test_too_few_samples_nan(self):
        assert math.isnan(power_law_exponent([5]))

    def test_degenerate_sequence_nan(self):
        assert math.isnan(power_law_exponent([], d_min=1))

    def test_ba_exponent_in_plausible_range(self):
        topo = barabasi_albert(400, m=2, rng=np.random.default_rng(0))
        alpha = power_law_exponent(topo.degrees(), d_min=2)
        assert 1.5 < alpha < 4.0


class TestClustering:
    def test_triangle_is_one(self, grid_physical):
        ov = overlay_from_edges(grid_physical, [(0, 1), (1, 2), (0, 2)], 3)
        assert clustering_coefficient(ov) == pytest.approx(1.0)

    def test_star_is_zero(self, grid_physical):
        ov = overlay_from_edges(grid_physical, [(0, 1), (0, 2), (0, 3)], 4)
        assert clustering_coefficient(ov) == 0.0

    def test_grid_is_zero(self):
        assert clustering_coefficient(grid(3, 3)) == 0.0

    def test_triangle_plus_pendant(self, grid_physical):
        ov = overlay_from_edges(
            grid_physical, [(0, 1), (1, 2), (0, 2), (2, 3)], 4
        )
        # Nodes 0, 1 have coefficient 1; node 2 has 1/3; node 3 has 0.
        assert clustering_coefficient(ov) == pytest.approx((1 + 1 + 1 / 3 + 0) / 4)


class TestPathLength:
    def test_path_graph_exact(self, grid_physical):
        ov = overlay_from_edges(grid_physical, [(0, 1), (1, 2)], 3)
        # Pairs: (0,1)=1 (0,2)=2 (1,2)=1 in both directions -> mean 4/3.
        assert characteristic_path_length(ov, samples=3) == pytest.approx(4 / 3)

    def test_complete_graph_is_one(self, grid_physical):
        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        ov = overlay_from_edges(grid_physical, edges, 4)
        assert characteristic_path_length(ov, samples=4) == pytest.approx(1.0)

    def test_sampling_close_to_exact(self):
        topo = barabasi_albert(150, m=2, rng=np.random.default_rng(2))
        exact = characteristic_path_length(topo, samples=150)
        sampled = characteristic_path_length(
            topo, samples=40, rng=np.random.default_rng(0)
        )
        assert sampled == pytest.approx(exact, rel=0.15)

    def test_single_node(self, grid_physical):
        ov = Overlay(grid_physical, {0: 0})
        assert characteristic_path_length(ov) == 0.0


class TestSmallWorldSigma:
    def test_small_world_beats_lattice(self):
        rng = np.random.default_rng(3)
        sw = watts_strogatz(120, k=6, rewire_p=0.1, rng=rng)
        sigma = small_world_sigma(sw, samples=60)
        assert sigma > 1.5

    def test_tiny_graph_nan(self, grid_physical):
        ov = overlay_from_edges(grid_physical, [(0, 1)], 2)
        assert math.isnan(small_world_sigma(ov))


class TestAnalyze:
    def test_report_fields(self):
        topo = grid(3, 3)
        report = analyze(topo, samples=9)
        assert report.num_nodes == 9
        assert report.num_edges == 12
        assert report.average_degree == pytest.approx(24 / 9)
        assert report.max_degree == 4
        assert report.clustering == 0.0

    def test_summary_renders(self):
        report = analyze(grid(3, 3), samples=9)
        text = report.summary()
        assert "n=9" in text and "alpha=" in text

    def test_generated_topology_is_power_law_and_small_world(self):
        """The Section 4.1 validation claim on our default underlay."""
        from repro.topology.overlay import small_world_overlay

        phys = barabasi_albert(300, m=2, rng=np.random.default_rng(1))
        ov = small_world_overlay(phys, 150, avg_degree=6, rng=np.random.default_rng(1))
        report = analyze(ov, samples=80)
        assert 1.5 < report.power_law_alpha < 4.0
        assert report.clustering > 0.1
        assert report.small_world_sigma > 1.5
