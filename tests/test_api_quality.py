"""API quality gates: docstrings, exports, module hygiene.

A library release lives or dies on its public surface; these meta-tests
keep it honest — every public module, class and function documented, every
``__all__`` entry real, no accidental wildcard leakage.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.topology",
    "repro.oracle",
    "repro.search",
    "repro.sim",
    "repro.metrics",
    "repro.experiments",
    "repro.extensions",
]


def iter_public_modules():
    seen = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        seen.append(pkg)
        for info in pkgutil.iter_modules(pkg.__path__, prefix=pkg_name + "."):
            if not info.name.rsplit(".", 1)[-1].startswith("_"):
                seen.append(importlib.import_module(info.name))
    return seen


ALL_MODULES = iter_public_modules()


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
class TestModuleHygiene:
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    def test_all_entries_resolve(self, module):
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.{name}"


def iter_public_callables():
    out = []
    for module in ALL_MODULES:
        exported = getattr(module, "__all__", None)
        names = exported if exported is not None else [
            n for n in vars(module) if not n.startswith("_")
        ]
        for name in names:
            obj = getattr(module, name, None)
            if obj is None:
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                out.append((f"{module.__name__}.{name}", obj))
    return out


PUBLIC_CALLABLES = iter_public_callables()


@pytest.mark.parametrize(
    "qualname,obj", PUBLIC_CALLABLES, ids=[q for q, _ in PUBLIC_CALLABLES]
)
def test_public_callable_documented(qualname, obj):
    assert obj.__doc__ and obj.__doc__.strip(), qualname


def test_public_methods_documented():
    undocumented = []
    for qualname, obj in PUBLIC_CALLABLES:
        if not inspect.isclass(obj):
            continue
        for name, member in vars(obj).items():
            if name.startswith("_"):
                continue
            func = member
            if isinstance(member, (staticmethod, classmethod)):
                func = member.__func__
            elif isinstance(member, property):
                func = member.fget
            if inspect.isfunction(func) and not (func.__doc__ or "").strip():
                undocumented.append(f"{qualname}.{name}")
    assert not undocumented, undocumented


def test_top_level_all_is_sorted_by_section_and_complete():
    # Every name in repro.__all__ resolves and is importable.
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
    # No duplicates.
    assert len(set(repro.__all__)) == len(repro.__all__)
