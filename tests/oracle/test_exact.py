"""ExactOracle: a transparent front for the batched underlay engine."""

import numpy as np
import pytest

from repro.oracle import ExactOracle
from repro.perf import counters, reset_counters
from repro.topology.overlay import Overlay, small_world_overlay


class TestDelegation:
    def test_delay_matches_engine(self, ba_physical):
        oracle = ExactOracle(ba_physical)
        hosts = ba_physical.largest_component_nodes()
        for u, v in [(hosts[0], hosts[1]), (hosts[2], hosts[7])]:
            assert oracle.delay(u, v) == ba_physical.delay(u, v)

    def test_delays_from_full_vector(self, ba_physical):
        oracle = ExactOracle(ba_physical)
        src = ba_physical.largest_component_nodes()[0]
        assert np.array_equal(
            oracle.delays_from(src), ba_physical.delays_from(src)
        )

    def test_delays_from_target_slice_aligns_with_targets(self, ba_physical):
        oracle = ExactOracle(ba_physical)
        hosts = ba_physical.largest_component_nodes()
        targets = [hosts[5], hosts[1], hosts[9]]
        sliced = oracle.delays_from(hosts[0], targets)
        full = ba_physical.delays_from(hosts[0])
        assert sliced.shape == (3,)
        assert list(sliced) == [full[t] for t in targets]

    def test_delays_from_many_delegates_batched(self, ba_physical):
        oracle = ExactOracle(ba_physical)
        hosts = ba_physical.largest_component_nodes()[:4]
        reset_counters()
        rows = oracle.delays_from_many(hosts, cache=False)
        assert counters.dijkstra_runs == 1  # one batched solve
        assert counters.dijkstra_sources == len(hosts)
        assert sorted(rows) == sorted(hosts)

    def test_warm_delegates(self, ba_physical):
        oracle = ExactOracle(ba_physical)
        hosts = ba_physical.largest_component_nodes()[:6]
        assert oracle.warm(hosts) == 6
        assert oracle.warm(hosts) == 0  # already resident

    def test_physical_property(self, ba_physical):
        assert ExactOracle(ba_physical).physical is ba_physical


class TestOverlaySeamIsTransparent:
    """Routing Overlay costs through ExactOracle must not change a bit —
    same answers AND the same counter traffic as the direct engine calls
    the overlay historically made."""

    def test_default_overlay_oracle_is_exact(self, ba_physical):
        ov = Overlay(ba_physical, {0: 0, 1: 1})
        assert isinstance(ov.oracle, ExactOracle)
        assert ov.oracle.physical is ba_physical

    def test_costs_and_counters_match_direct_engine(self, rng, ba_physical):
        ov = small_world_overlay(ba_physical, 30, avg_degree=4, rng=rng)
        reset_counters()
        via_overlay = {(u, v): ov.cost(u, v) for u, v in ov.edges()}
        overlay_counters = counters.snapshot()
        reset_counters()
        direct = {
            (u, v): ba_physical.delay(ov.host_of(u), ov.host_of(v))
            if ov.host_of(u) != ov.host_of(v)
            else 0.0
            for u, v in via_overlay
        }
        assert via_overlay == direct
        # The seam adds no Dijkstra work and no oracle-counter noise.
        assert overlay_counters["oracle_estimates"] == 0
        assert overlay_counters["oracle_exact_fallbacks"] == 0
        assert overlay_counters["landmark_embed_sources"] == 0

    def test_copy_shares_the_oracle(self, rng, ba_physical):
        ov = small_world_overlay(ba_physical, 20, avg_degree=4, rng=rng)
        assert ov.copy().oracle is ov.oracle

    def test_foreign_oracle_rejected(self, grid_physical, ba_physical):
        with pytest.raises(ValueError):
            Overlay(ba_physical, oracle=ExactOracle(grid_physical))


class TestDelayPairsDefault:
    """The base-class pairwise fallback: grouped delays_from slices."""

    def test_exact_is_not_pairwise_cheap(self, ba_physical):
        assert not ExactOracle(ba_physical).pairwise_cheap

    def test_matches_vector_entries_exactly(self, rng, ba_physical):
        oracle = ExactOracle(ba_physical)
        hosts = ba_physical.largest_component_nodes()
        idx = rng.integers(0, len(hosts), size=(30, 2))
        us = [hosts[int(i)] for i, _ in idx]
        vs = [hosts[int(j)] for _, j in idx]
        got = oracle.delay_pairs(us, vs)
        want = np.array([oracle.delays_from(u)[v] for u, v in zip(us, vs)])
        assert np.array_equal(got, want)
