"""LandmarkOracle: triangle bounds, estimators, accuracy gate, shm transport."""

import math

import numpy as np
import pytest

from repro.oracle import LandmarkOracle, OracleAccuracyError
from repro.perf import counters, reset_counters
from repro.topology.generators import waxman


def sample_pairs(physical, rng, n):
    hosts = physical.largest_component_nodes()
    idx = rng.integers(0, len(hosts), size=(n, 2))
    return [(hosts[int(i)], hosts[int(j)]) for i, j in idx if i != j]


class TestTriangleBounds:
    def test_bounds_bracket_exact_delay(self, rng, ba_physical):
        oracle = LandmarkOracle(ba_physical, n_landmarks=8, rng=rng)
        for u, v in sample_pairs(ba_physical, rng, 100):
            lower, upper = oracle.bounds(u, v)
            true = ba_physical.delay(u, v)
            assert lower <= true + 1e-9
            assert true <= upper + 1e-9

    def test_bounds_identity_pair(self, rng, ba_physical):
        oracle = LandmarkOracle(ba_physical, n_landmarks=4, rng=rng)
        host = ba_physical.largest_component_nodes()[0]
        assert oracle.bounds(host, host) == (0.0, 0.0)

    def test_estimators_respect_bounds(self, rng, ba_physical):
        hosts = ba_physical.largest_component_nodes()
        lms = hosts[:6]
        by_est = {
            est: LandmarkOracle(ba_physical, landmarks=lms, estimator=est)
            for est in ("lower", "upper", "midpoint")
        }
        for u, v in sample_pairs(ba_physical, rng, 50):
            lo = by_est["lower"].estimate(u, v)
            up = by_est["upper"].estimate(u, v)
            mid = by_est["midpoint"].estimate(u, v)
            assert lo <= up + 1e-9
            assert mid == pytest.approx(0.5 * (lo + up))


class TestAccuracyAtPaperishScale:
    """The ISSUE-pinned gate: k=16 on a 1,000-node Waxman graph."""

    @pytest.fixture(scope="class")
    def waxman_1000(self):
        return waxman(1000, rng=np.random.default_rng(11))

    def test_midpoint_median_relative_error_under_threshold(self, waxman_1000):
        oracle = LandmarkOracle(
            waxman_1000, n_landmarks=16, rng=np.random.default_rng(2)
        )
        error = oracle.validate_accuracy(samples=256)
        # Measured 0.0835 for maxmin/midpoint at this seed; 0.15 leaves
        # headroom for numeric drift without letting quality regress far.
        assert error < 0.15
        assert oracle.validated_error == error

    def test_midpoint_beats_euclidean(self, waxman_1000):
        mid = LandmarkOracle(
            waxman_1000, n_landmarks=16, rng=np.random.default_rng(2)
        )
        euc = LandmarkOracle(
            waxman_1000,
            n_landmarks=16,
            estimator="euclidean",
            rng=np.random.default_rng(2),
        )
        assert mid.validate_accuracy(256) < euc.validate_accuracy(256)


class TestSelectionStrategies:
    def test_deterministic_per_strategy(self, ba_physical):
        for strategy in ("random", "degree", "maxmin"):
            a = LandmarkOracle(
                ba_physical,
                n_landmarks=6,
                strategy=strategy,
                rng=np.random.default_rng(7),
            )
            b = LandmarkOracle(
                ba_physical,
                n_landmarks=6,
                strategy=strategy,
                rng=np.random.default_rng(7),
            )
            assert a.landmarks == b.landmarks, strategy
            assert np.array_equal(a.embedding, b.embedding), strategy

    def test_degree_picks_highest_degree_hosts(self, ba_physical):
        oracle = LandmarkOracle(ba_physical, n_landmarks=5, strategy="degree")
        degrees = ba_physical.degrees()
        ranked = sorted(
            ba_physical.largest_component_nodes(),
            key=lambda h: (-int(degrees[h]), h),
        )
        assert oracle.landmarks == ranked[:5]

    def test_maxmin_landmarks_distinct_and_spread(self, rng, ba_physical):
        oracle = LandmarkOracle(
            ba_physical, n_landmarks=8, strategy="maxmin", rng=rng
        )
        assert len(set(oracle.landmarks)) == 8
        # Every landmark after the first is at positive delay from the rest.
        for i, lm in enumerate(oracle.landmarks[1:], start=1):
            others = oracle.landmarks[:i]
            assert min(oracle.embedding[j][lm] for j in range(i)) > 0 or (
                lm not in others
            )

    def test_explicit_landmarks_skip_rng(self, ba_physical):
        hosts = ba_physical.largest_component_nodes()[:3]
        oracle = LandmarkOracle(ba_physical, landmarks=hosts)
        assert oracle.landmarks == list(hosts)
        assert oracle.embedding.shape == (3, ba_physical.num_nodes)

    def test_invalid_construction(self, ba_physical):
        with pytest.raises(ValueError):
            LandmarkOracle(ba_physical, strategy="astrology")
        with pytest.raises(ValueError):
            LandmarkOracle(ba_physical, estimator="vibes")
        with pytest.raises(ValueError):
            LandmarkOracle(ba_physical, landmarks=[])
        with pytest.raises(ValueError):
            LandmarkOracle(ba_physical, landmarks=[0, 0])
        with pytest.raises(ValueError):
            LandmarkOracle(ba_physical, landmarks=[ba_physical.num_nodes])
        with pytest.raises(ValueError):
            LandmarkOracle(ba_physical, n_landmarks=0)


class TestVectorAndScalarAgree:
    def test_vector_matches_scalar_midpoint(self, rng, ba_physical):
        oracle = LandmarkOracle(ba_physical, n_landmarks=6, rng=rng)
        src = ba_physical.largest_component_nodes()[0]
        vec = oracle.delays_from(src)
        assert vec[src] == 0.0
        assert not np.isnan(vec).any()
        for v in ba_physical.largest_component_nodes()[1:20]:
            assert vec[v] == pytest.approx(oracle.estimate(src, v))

    def test_targets_slice(self, rng, ba_physical):
        oracle = LandmarkOracle(ba_physical, n_landmarks=4, rng=rng)
        hosts = ba_physical.largest_component_nodes()
        sliced = oracle.delays_from(hosts[0], [hosts[3], hosts[1]])
        full = oracle.delays_from(hosts[0])
        assert list(sliced) == [full[hosts[3]], full[hosts[1]]]

    def test_no_dijkstra_after_construction(self, rng, ba_physical):
        oracle = LandmarkOracle(ba_physical, n_landmarks=4, rng=rng)
        hosts = ba_physical.largest_component_nodes()[:10]
        reset_counters()
        oracle.delays_from_many(hosts)
        for u in hosts[:3]:
            for v in hosts[3:6]:
                oracle.delay(u, v)
        assert counters.dijkstra_runs == 0
        assert counters.dijkstra_sources == 0

    def test_warm_counts_and_pins(self, rng, ba_physical):
        oracle = LandmarkOracle(
            ba_physical, n_landmarks=4, rng=rng, vector_cache_size=2
        )
        hosts = ba_physical.largest_component_nodes()[:6]
        assert oracle.warm(hosts) == 6  # cache grew to hold the working set
        assert oracle.warm(hosts) == 0


class TestCounters:
    def test_embed_sources_counted(self, rng, ba_physical):
        reset_counters()
        LandmarkOracle(ba_physical, n_landmarks=5, strategy="random", rng=rng)
        assert counters.landmark_embed_sources == 5

    def test_estimates_counted_once_per_computation(self, rng, ba_physical):
        oracle = LandmarkOracle(ba_physical, n_landmarks=4, rng=rng)
        hosts = ba_physical.largest_component_nodes()
        reset_counters()
        oracle.delay(hosts[0], hosts[1])
        oracle.delay(hosts[0], hosts[1])
        assert counters.oracle_estimates == 2  # scalar answers both count
        oracle.delays_from(hosts[2])
        oracle.delays_from(hosts[2])  # cached re-serve: no new estimate
        assert counters.oracle_estimates == 3
        assert counters.oracle_exact_fallbacks == 0


class TestExactFallback:
    def test_budget_spent_on_uncertain_queries(self, rng, ba_physical):
        # fallback_gap=0 makes every non-degenerate bracket "uncertain",
        # so the first `budget` scalar queries must return exact delays.
        oracle = LandmarkOracle(
            ba_physical,
            n_landmarks=2,
            rng=rng,
            exact_fallback_budget=3,
            fallback_gap=0.0,
        )
        pairs = sample_pairs(ba_physical, rng, 20)[:5]
        reset_counters()
        answers = [oracle.delay(u, v) for u, v in pairs]
        assert counters.oracle_exact_fallbacks == 3
        assert oracle.exact_fallbacks_remaining == 0
        for (u, v), got in zip(pairs[:3], answers[:3]):
            assert got == ba_physical.delay(u, v)
        # Budget exhausted: the rest are embedding estimates.
        for (u, v), got in zip(pairs[3:], answers[3:]):
            assert got == pytest.approx(oracle.estimate(u, v))

    def test_tight_bracket_never_spends_budget(self, ba_physical):
        hosts = ba_physical.largest_component_nodes()
        oracle = LandmarkOracle(
            ba_physical,
            landmarks=hosts[:4],
            exact_fallback_budget=5,
            fallback_gap=math.inf,
        )
        reset_counters()
        oracle.delay(hosts[5], hosts[6])
        assert counters.oracle_exact_fallbacks == 0
        assert oracle.exact_fallbacks_remaining == 5


class TestAccuracyGate:
    def test_impossible_accuracy_raises(self, ba_physical):
        with pytest.raises(OracleAccuracyError, match="median relative error"):
            LandmarkOracle(
                ba_physical,
                n_landmarks=1,
                strategy="random",
                rng=np.random.default_rng(3),
                accuracy=0.999,
            )

    def test_lenient_accuracy_passes_and_records_error(self, ba_physical):
        oracle = LandmarkOracle(
            ba_physical,
            n_landmarks=8,
            rng=np.random.default_rng(3),
            accuracy=0.05,
        )
        assert oracle.validated_error is not None
        assert oracle.validated_error <= 0.95 + 1e-9

    def test_validation_does_not_touch_caller_rng(self, ba_physical):
        rng = np.random.default_rng(21)
        oracle = LandmarkOracle(ba_physical, n_landmarks=4, rng=rng)
        state_before = rng.bit_generator.state
        oracle.validate_accuracy(samples=32)
        assert rng.bit_generator.state == state_before

    def test_accuracy_out_of_range(self, ba_physical):
        with pytest.raises(ValueError):
            LandmarkOracle(ba_physical, n_landmarks=2, accuracy=1.5)


class TestSharedMemoryTransport:
    def test_export_attach_round_trip(self, rng, ba_physical):
        oracle = LandmarkOracle(ba_physical, n_landmarks=6, rng=rng)
        exported = oracle.export_shared()
        try:
            attached = LandmarkOracle.attach_shared(
                exported.handle, ba_physical
            )
            assert attached.is_attached
            assert not oracle.is_attached
            assert attached.landmarks == oracle.landmarks
            assert np.array_equal(
                attached.embedding, oracle.embedding, equal_nan=True
            )
            hosts = ba_physical.largest_component_nodes()
            for u, v in [(hosts[0], hosts[4]), (hosts[2], hosts[9])]:
                assert attached.delay(u, v) == oracle.delay(u, v)
        finally:
            exported.unlink()

    def test_attach_rejects_wrong_underlay_size(self, rng, ba_physical,
                                                grid_physical):
        oracle = LandmarkOracle(ba_physical, n_landmarks=3, rng=rng)
        exported = oracle.export_shared()
        try:
            with pytest.raises(ValueError, match="nodes"):
                LandmarkOracle.attach_shared(exported.handle, grid_physical)
        finally:
            exported.unlink()

    def test_unlink_is_idempotent(self, rng, ba_physical):
        exported = LandmarkOracle(
            ba_physical, n_landmarks=2, rng=rng
        ).export_shared()
        exported.unlink()
        exported.unlink()


class TestDelayPairs:
    """The pairwise interface must match the vector path bit for bit —
    the struct-of-arrays engine mixes the two forms freely."""

    def test_pairwise_cheap_advertised(self, rng, ba_physical):
        assert LandmarkOracle(ba_physical, n_landmarks=4, rng=rng).pairwise_cheap

    @pytest.mark.parametrize(
        "estimator", ["midpoint", "lower", "upper", "euclidean"]
    )
    def test_matches_vector_entries_exactly(self, rng, ba_physical, estimator):
        oracle = LandmarkOracle(
            ba_physical, n_landmarks=8, rng=rng, estimator=estimator
        )
        pairs = sample_pairs(ba_physical, rng, 80)
        # Mix in identity pairs and repeat counts from 1 upward: numpy's
        # reduction order varies with array width, which is exactly the
        # hazard the implementation guards against.
        pairs.append((pairs[0][0], pairs[0][0]))
        for size in (1, 2, len(pairs)):
            us = [u for u, _ in pairs[:size]]
            vs = [v for _, v in pairs[:size]]
            got = oracle.delay_pairs(us, vs)
            want = np.array([oracle.delays_from(u)[v] for u, v in zip(us, vs)])
            assert np.array_equal(got, want)

    def test_never_spends_fallback_budget(self, rng, ba_physical):
        oracle = LandmarkOracle(
            ba_physical, n_landmarks=2, rng=rng, exact_fallback_budget=100
        )
        pairs = sample_pairs(ba_physical, rng, 40)
        reset_counters()
        oracle.delay_pairs([u for u, _ in pairs], [v for _, v in pairs])
        assert counters.oracle_exact_fallbacks == 0
        assert counters.oracle_estimates == len(pairs)

    def test_rejects_misaligned_and_out_of_range(self, rng, ba_physical):
        oracle = LandmarkOracle(ba_physical, n_landmarks=2, rng=rng)
        with pytest.raises(ValueError, match="equal length"):
            oracle.delay_pairs([0, 1], [2])
        with pytest.raises(ValueError, match="out of range"):
            oracle.delay_pairs([0], [ba_physical.num_nodes])
        assert len(oracle.delay_pairs([], [])) == 0
