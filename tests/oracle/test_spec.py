"""Oracle spec grammar: parse, canonicalize, build."""

import pytest

from repro.oracle import (
    ExactOracle,
    LandmarkOracle,
    OracleSpec,
    make_oracle,
    parse_oracle_spec,
)


class TestParse:
    def test_exact(self):
        assert parse_oracle_spec("exact") == OracleSpec(kind="exact")
        assert parse_oracle_spec("  EXACT ") == OracleSpec(kind="exact")

    def test_landmark_defaults(self):
        spec = parse_oracle_spec("landmark")
        assert spec == OracleSpec(
            kind="landmark", n_landmarks=16, strategy="maxmin",
            estimator="midpoint",
        )

    def test_landmark_full(self):
        spec = parse_oracle_spec("landmark:32:degree:upper")
        assert spec.n_landmarks == 32
        assert spec.strategy == "degree"
        assert spec.estimator == "upper"

    def test_empty_fields_keep_defaults(self):
        spec = parse_oracle_spec("landmark::random")
        assert spec.n_landmarks == 16
        assert spec.strategy == "random"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "exact:1",
            "gnp",
            "landmark:zero",
            "landmark:0",
            "landmark:-4",
            "landmark:8:astrology",
            "landmark:8:maxmin:vibes",
            "landmark:8:maxmin:midpoint:extra",
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_oracle_spec(bad)


class TestCanonical:
    @pytest.mark.parametrize(
        "spec,canonical",
        [
            ("exact", "exact"),
            ("landmark", "landmark:16:maxmin:midpoint"),
            ("landmark:8", "landmark:8:maxmin:midpoint"),
            ("landmark:8:random:euclidean", "landmark:8:random:euclidean"),
        ],
    )
    def test_round_trip(self, spec, canonical):
        parsed = parse_oracle_spec(spec)
        assert parsed.canonical() == canonical
        assert parse_oracle_spec(parsed.canonical()) == parsed


class TestMakeOracle:
    def test_exact_backend(self, ba_physical):
        oracle = make_oracle("exact", ba_physical)
        assert isinstance(oracle, ExactOracle)
        assert oracle.physical is ba_physical

    def test_landmark_backend(self, rng, ba_physical):
        oracle = make_oracle("landmark:4:degree:lower", ba_physical, rng=rng)
        assert isinstance(oracle, LandmarkOracle)
        assert oracle.n_landmarks == 4
        assert oracle.strategy == "degree"
        assert oracle.estimator == "lower"

    def test_landmark_seeded_build_is_deterministic(self, ba_physical):
        import numpy as np

        a = make_oracle("landmark:5", ba_physical,
                        rng=np.random.default_rng(13))
        b = make_oracle("landmark:5", ba_physical,
                        rng=np.random.default_rng(13))
        assert a.landmarks == b.landmarks
