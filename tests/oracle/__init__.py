"""Tests for the pluggable delay-oracle subsystem."""
