"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import EventLoop


class TestScheduling:
    def test_schedule_and_step(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(5.0, lambda: fired.append("a"))
        assert loop.step() is True
        assert fired == ["a"]
        assert loop.now == 5.0

    def test_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(3.0, lambda: fired.append("late"))
        loop.schedule_at(1.0, lambda: fired.append("early"))
        loop.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for name in ("first", "second", "third"):
            loop.schedule_at(2.0, lambda n=name: fired.append(n))
        loop.run()
        assert fired == ["first", "second", "third"]

    def test_schedule_in_relative(self):
        loop = EventLoop(start_time=10.0)
        fired = []
        loop.schedule_in(2.5, lambda: fired.append(loop.now))
        loop.run()
        assert fired == [12.5]

    def test_schedule_in_past_raises(self):
        loop = EventLoop(start_time=10.0)
        with pytest.raises(ValueError, match="past"):
            loop.schedule_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventLoop().schedule_in(-1.0, lambda: None)

    def test_events_scheduled_during_execution(self):
        loop = EventLoop()
        fired = []

        def outer():
            fired.append("outer")
            loop.schedule_in(1.0, lambda: fired.append("inner"))

        loop.schedule_at(1.0, outer)
        loop.run()
        assert fired == ["outer", "inner"]
        assert loop.now == 2.0


class TestCancel:
    def test_cancelled_event_skipped(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule_at(1.0, lambda: fired.append("x"))
        loop.cancel(handle)
        assert handle.cancelled
        loop.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        loop = EventLoop()
        handle = loop.schedule_at(1.0, lambda: None)
        loop.run()
        loop.cancel(handle)  # must not raise

    def test_cancel_one_of_many(self):
        loop = EventLoop()
        fired = []
        keep = loop.schedule_at(1.0, lambda: fired.append("keep"))
        drop = loop.schedule_at(1.0, lambda: fired.append("drop"))
        loop.cancel(drop)
        loop.run()
        assert fired == ["keep"]


class TestRunUntil:
    def test_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda: fired.append(1))
        loop.schedule_at(5.0, lambda: fired.append(5))
        loop.run_until(3.0)
        assert fired == [1]
        assert loop.now == 3.0
        assert loop.pending == 1

    def test_inclusive_boundary(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(3.0, lambda: fired.append(3))
        loop.run_until(3.0)
        assert fired == [3]

    def test_clock_advances_without_events(self):
        loop = EventLoop()
        loop.run_until(7.0)
        assert loop.now == 7.0


class TestRun:
    def test_drains_queue(self):
        loop = EventLoop()
        for t in range(5):
            loop.schedule_at(float(t), lambda: None)
        assert loop.run() == 5
        assert loop.pending == 0
        assert loop.processed == 5

    def test_max_events(self):
        loop = EventLoop()
        for t in range(5):
            loop.schedule_at(float(t), lambda: None)
        assert loop.run(max_events=2) == 2
        assert loop.pending == 3

    def test_step_empty_returns_false(self):
        assert EventLoop().step() is False
