"""Unit tests for object placement and the query workload."""

import numpy as np
import pytest

from repro.sim.workload import (
    ObjectCatalog,
    QueryWorkload,
    WorkloadConfig,
)


@pytest.fixture
def catalog(rng):
    cfg = WorkloadConfig(num_objects=50, replicas_per_object=4)
    return ObjectCatalog(list(range(100)), cfg, rng)


class TestConfigValidation:
    def test_defaults_are_paper_values(self):
        cfg = WorkloadConfig()
        assert cfg.queries_per_peer_per_min == pytest.approx(0.3)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            WorkloadConfig(queries_per_peer_per_min=0.0)

    def test_rejects_no_objects(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_objects=0)

    def test_rejects_no_replicas(self):
        with pytest.raises(ValueError):
            WorkloadConfig(replicas_per_object=0)


class TestCatalog:
    def test_object_count(self, catalog):
        assert catalog.num_objects == 50

    def test_replica_counts(self, catalog):
        for obj in range(catalog.num_objects):
            assert len(catalog.holders_of(obj)) == 4

    def test_holders_are_peers(self, catalog):
        for obj in range(catalog.num_objects):
            assert all(0 <= h < 100 for h in catalog.holders_of(obj))

    def test_replicas_capped_by_population(self, rng):
        cfg = WorkloadConfig(num_objects=3, replicas_per_object=10)
        catalog = ObjectCatalog([1, 2, 3], cfg, rng)
        assert all(len(catalog.holders_of(o)) == 3 for o in range(3))

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ValueError):
            ObjectCatalog([], WorkloadConfig(), rng)

    def test_zipf_popularity_skew(self, catalog, rng):
        draws = [catalog.sample_object(rng) for _ in range(4000)]
        counts = np.bincount(draws, minlength=50)
        # Rank-0 objects must be drawn much more often than rank-40+.
        assert counts[0] > 3 * counts[40:].mean()

    def test_sampling_deterministic(self, catalog):
        a = [catalog.sample_object(np.random.default_rng(3)) for _ in range(10)]
        b = [catalog.sample_object(np.random.default_rng(3)) for _ in range(10)]
        assert a == b


class TestWorkload:
    def test_interarrival_scales_inversely_with_population(self, catalog):
        wl = QueryWorkload(catalog, np.random.default_rng(0))
        small = np.mean([wl.next_interarrival(10) for _ in range(2000)])
        wl2 = QueryWorkload(catalog, np.random.default_rng(0))
        large = np.mean([wl2.next_interarrival(100) for _ in range(2000)])
        assert small == pytest.approx(10 * large, rel=0.15)

    def test_mean_matches_paper_rate(self, catalog):
        wl = QueryWorkload(catalog, np.random.default_rng(1))
        # 100 peers x 0.3 / min = 0.5 queries per second -> mean gap 2 s.
        gaps = [wl.next_interarrival(100) for _ in range(4000)]
        assert np.mean(gaps) == pytest.approx(2.0, rel=0.1)

    def test_custom_rate(self, catalog):
        wl = QueryWorkload(
            catalog, np.random.default_rng(1), queries_per_peer_per_min=60.0
        )
        gaps = [wl.next_interarrival(1) for _ in range(2000)]
        assert np.mean(gaps) == pytest.approx(1.0, rel=0.1)

    def test_no_online_peers_rejected(self, catalog):
        wl = QueryWorkload(catalog, np.random.default_rng(0))
        with pytest.raises(ValueError):
            wl.next_interarrival(0)
        with pytest.raises(ValueError):
            wl.next_query(0.0, [])

    def test_query_event_fields(self, catalog):
        wl = QueryWorkload(catalog, np.random.default_rng(0))
        event = wl.next_query(12.5, [4, 5, 6])
        assert event.time == 12.5
        assert event.source in {4, 5, 6}
        assert 0 <= event.object_id < catalog.num_objects

    def test_sources_roughly_uniform(self, catalog):
        wl = QueryWorkload(catalog, np.random.default_rng(0))
        online = list(range(10))
        sources = [wl.next_query(0.0, online).source for _ in range(3000)]
        counts = np.bincount(sources, minlength=10)
        assert counts.min() > 0.5 * counts.max()
