"""Unit tests for per-peer session records."""

import pytest

from repro.sim.peer import PeerRecord


class TestAddressCache:
    def test_learn_and_list_most_recent_first(self):
        rec = PeerRecord(peer_id=0, host=0)
        rec.learn_addresses([1, 2, 3])
        assert rec.cached_addresses() == [3, 2, 1]

    def test_never_caches_self(self):
        rec = PeerRecord(peer_id=0, host=0)
        rec.learn_address(0)
        assert rec.cached_addresses() == []

    def test_relearn_moves_to_front(self):
        rec = PeerRecord(peer_id=0, host=0)
        rec.learn_addresses([1, 2, 3])
        rec.learn_address(1)
        assert rec.cached_addresses() == [1, 3, 2]

    def test_capacity_eviction(self):
        rec = PeerRecord(peer_id=0, host=0, cache_capacity=2)
        rec.learn_addresses([1, 2, 3])
        assert rec.cached_addresses() == [3, 2]


class TestSessions:
    def test_begin_session(self):
        rec = PeerRecord(peer_id=0, host=0)
        rec.begin_session(now=100.0, lifetime=50.0)
        assert rec.alive
        assert rec.joined_at == 100.0
        assert rec.departs_at == 150.0
        assert rec.sessions == 1

    def test_end_session_keeps_cache(self):
        rec = PeerRecord(peer_id=0, host=0)
        rec.learn_address(5)
        rec.begin_session(0.0, 10.0)
        rec.end_session()
        assert not rec.alive
        assert rec.departs_at is None
        assert rec.cached_addresses() == [5]

    def test_double_begin_raises(self):
        rec = PeerRecord(peer_id=0, host=0)
        rec.begin_session(0.0, 10.0)
        with pytest.raises(RuntimeError, match="already online"):
            rec.begin_session(1.0, 10.0)

    def test_end_offline_raises(self):
        rec = PeerRecord(peer_id=0, host=0)
        with pytest.raises(RuntimeError, match="not online"):
            rec.end_session()

    def test_nonpositive_lifetime_rejected(self):
        rec = PeerRecord(peer_id=0, host=0)
        with pytest.raises(ValueError, match="lifetime"):
            rec.begin_session(0.0, 0.0)

    def test_session_counter(self):
        rec = PeerRecord(peer_id=0, host=0)
        for _ in range(3):
            rec.begin_session(0.0, 1.0)
            rec.end_session()
        assert rec.sessions == 3
