"""Unit tests for the churn model."""

import numpy as np
import pytest

from repro.sim.churn import ChurnConfig, ChurnModel, LifetimeDistribution
from repro.topology.overlay import Overlay, random_overlay


@pytest.fixture
def world(ba_physical, rng):
    ov = random_overlay(ba_physical, 30, avg_degree=4, rng=rng)
    used = {ov.host_of(p) for p in ov.peers()}
    pool = [h for h in ba_physical.largest_component_nodes() if h not in used]
    offline = {100 + i: pool[i] for i in range(10)}
    model = ChurnModel(ov, offline, np.random.default_rng(7))
    return ov, model


class TestLifetimeDistribution:
    def test_moments_match(self):
        dist = LifetimeDistribution(mean=600.0, std=300.0)
        samples = dist.sample_many(np.random.default_rng(0), 40000)
        assert np.mean(samples) == pytest.approx(600.0, rel=0.05)
        assert np.std(samples) == pytest.approx(300.0, rel=0.10)

    def test_always_positive(self):
        dist = LifetimeDistribution(mean=10.0, std=30.0)
        samples = dist.sample_many(np.random.default_rng(0), 1000)
        assert (samples > 0).all()

    def test_paper_defaults(self):
        cfg = ChurnConfig()
        assert cfg.mean_lifetime == 600.0  # 10 minutes
        assert cfg.std_lifetime == 300.0  # "variance half of the mean"

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LifetimeDistribution(mean=0.0)
        with pytest.raises(ValueError):
            LifetimeDistribution(mean=10.0, std=-1.0)


class TestSetup:
    def test_records_cover_everyone(self, world):
        _ov, model = world
        assert len(model.records) == 40
        assert model.online_count == 30
        assert model.offline_count == 10

    def test_offline_id_collision_rejected(self, world):
        ov, _model = world
        with pytest.raises(ValueError, match="collides"):
            ChurnModel(ov, {0: 50}, np.random.default_rng(0))

    def test_start_initial_sessions(self, world):
        ov, model = world
        model.start_initial_sessions(now=0.0)
        for p in ov.peers():
            rec = model.records[p]
            assert rec.alive
            assert rec.departs_at is not None
            assert set(rec.cached_addresses()) >= set(ov.neighbors(p))


class TestDepartArrive:
    def test_population_constant(self, world):
        ov, model = world
        model.start_initial_sessions(0.0)
        for t, peer in enumerate(list(ov.peers())[:5]):
            model.depart(peer, now=float(t))
        assert model.online_count == 30
        assert model.offline_count == 10
        assert model.departures == 5
        assert model.arrivals == 5

    def test_departed_peer_offline(self, world):
        ov, model = world
        model.start_initial_sessions(0.0)
        victim = ov.peers()[0]
        model.depart(victim, now=1.0)
        assert not ov.has_peer(victim)
        assert not model.records[victim].alive

    def test_replacement_connected_and_alive(self, world):
        ov, model = world
        model.start_initial_sessions(0.0)
        replacement = model.depart(ov.peers()[0], now=1.0)
        assert ov.has_peer(replacement)
        assert ov.degree(replacement) >= 1
        rec = model.records[replacement]
        assert rec.alive
        assert rec.departs_at > 1.0

    def test_replacement_avoids_immediate_rejoin(self, world):
        ov, model = world
        model.start_initial_sessions(0.0)
        for peer in list(ov.peers())[:8]:
            replacement = model.depart(peer, now=0.0)
            assert replacement != peer

    def test_departing_peer_caches_neighbors(self, world):
        ov, model = world
        model.start_initial_sessions(0.0)
        victim = ov.peers()[0]
        neighbors = set(ov.neighbors(victim))
        model.depart(victim, now=1.0)
        assert neighbors <= set(model.records[victim].cached_addresses())

    def test_next_departure_is_earliest(self, world):
        ov, model = world
        model.start_initial_sessions(0.0)
        earliest = model.next_departure()
        assert earliest is not None
        assert earliest.departs_at == min(
            model.records[p].departs_at for p in ov.peers()
        )

    def test_empty_pool_rejoins_departed_peer(self, ba_physical):
        # With no spare identities, the departing peer is the only possible
        # replacement and rejoins immediately (population stays constant).
        ov = random_overlay(ba_physical, 10, avg_degree=4, rng=np.random.default_rng(1))
        model = ChurnModel(ov, {}, np.random.default_rng(1))
        model.start_initial_sessions(0.0)
        victim = ov.peers()[0]
        replacement = model.depart(victim, now=0.0)
        assert replacement == victim
        assert ov.has_peer(victim)
        assert model.online_count == 10


class TestRepair:
    def test_repair_isolated(self, world):
        ov, model = world
        model.start_initial_sessions(0.0)
        victim = ov.peers()[0]
        for nbr in list(ov.neighbors(victim)):
            ov.disconnect(victim, nbr)
        assert ov.degree(victim) == 0
        repaired = model.repair_isolated()
        assert repaired == 1
        assert ov.degree(victim) >= 1

    def test_repair_noop_when_healthy(self, world):
        _ov, model = world
        model.start_initial_sessions(0.0)
        assert model.repair_isolated() == 0
