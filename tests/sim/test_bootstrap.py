"""Unit tests for the bootstrap service."""

import numpy as np
import pytest

from repro.sim.bootstrap import BootstrapService
from repro.sim.peer import PeerRecord
from repro.topology.overlay import Overlay


@pytest.fixture
def world(grid_physical):
    """Six live peers in a ring plus one fresh peer (6) to join."""
    ov = Overlay(grid_physical, {i: i for i in range(7)})
    for i in range(6):
        ov.connect(i, (i + 1) % 6)
    records = {i: PeerRecord(peer_id=i, host=i) for i in range(7)}
    rng = np.random.default_rng(0)
    service = BootstrapService(ov, records, rng, target_degree=3)
    return ov, records, service


class TestRandomAddresses:
    def test_returns_live_peers(self, world):
        ov, _records, service = world
        addrs = service.random_addresses(4)
        assert len(addrs) == 4
        assert all(ov.has_peer(a) for a in addrs)

    def test_excludes(self, world):
        _ov, _records, service = world
        addrs = service.random_addresses(10, exclude={0, 1, 2})
        assert not set(addrs) & {0, 1, 2}

    def test_caps_at_population(self, world):
        _ov, _records, service = world
        assert len(service.random_addresses(100)) == 7

    def test_target_degree_validation(self, world):
        ov, records, _ = world
        with pytest.raises(ValueError):
            BootstrapService(ov, records, np.random.default_rng(0), target_degree=0)


class TestJoining:
    def test_connects_to_target_degree(self, world):
        ov, _records, service = world
        connected = service.connect_joining_peer(6)
        assert len(connected) == 3
        assert ov.degree(6) == 3

    def test_cached_addresses_tried_first(self, world):
        ov, records, service = world
        records[6].learn_addresses([2, 4])
        connected = service.connect_joining_peer(6)
        assert {2, 4} <= set(connected)

    def test_dead_cached_addresses_skipped(self, world):
        ov, records, service = world
        records[6].learn_address(99)  # never existed
        connected = service.connect_joining_peer(6)
        assert 99 not in connected
        assert ov.degree(6) == 3

    def test_joiner_learns_neighbors(self, world):
        _ov, records, service = world
        connected = service.connect_joining_peer(6)
        assert set(records[6].cached_addresses()) >= set(connected)

    def test_neighbors_learn_joiner(self, world):
        _ov, records, service = world
        connected = service.connect_joining_peer(6)
        for nbr in connected:
            assert 6 in records[nbr].cached_addresses()

    def test_small_population_partial_degree(self, grid_physical):
        ov = Overlay(grid_physical, {0: 0, 1: 1})
        records = {i: PeerRecord(peer_id=i, host=i) for i in range(2)}
        service = BootstrapService(
            ov, records, np.random.default_rng(0), target_degree=5
        )
        connected = service.connect_joining_peer(0)
        assert connected == [1]
