"""Unit tests for the protocol message taxonomy."""

import pytest

from repro.sim.messages import (
    GNUTELLA_HEADER_BYTES,
    ConnectRequest,
    CostProbe,
    CostTableMessage,
    DisconnectNotice,
    Ping,
    Pong,
    Query,
    QueryHit,
    wire_cost,
)


class TestSizes:
    def test_header_size(self):
        assert GNUTELLA_HEADER_BYTES == 23

    def test_ping_is_header_only(self):
        assert Ping(sender=0).size_bytes == 23

    def test_pong_payload(self):
        assert Pong(sender=0).size_bytes == 23 + 14

    def test_query_bigger_than_ping(self):
        assert Query(sender=0).size_bytes > Ping(sender=0).size_bytes

    def test_query_hit_biggest_standard(self):
        assert QueryHit(sender=0).size_bytes > Query(sender=0).size_bytes

    def test_cost_table_scales_with_entries(self):
        empty = CostTableMessage(sender=0, entries=())
        three = CostTableMessage(
            sender=0, entries=((1, 5.0), (2, 3.0), (3, 8.0))
        )
        assert empty.size_bytes == 23
        assert three.size_bytes == 23 + 3 * CostTableMessage.ENTRY_BYTES


class TestIdentity:
    def test_guids_unique(self):
        assert Ping(sender=0).guid != Ping(sender=0).guid

    def test_kind_labels(self):
        assert Ping(sender=0).kind == "ping"
        assert CostProbe(sender=0).kind == "cost_probe"
        assert ConnectRequest(sender=0).kind == "connect_request"
        assert DisconnectNotice(sender=0).kind == "disconnect_notice"


class TestForwarding:
    def test_forwarded_decrements_ttl(self):
        q = Query(sender=0, ttl=7, object_id=3)
        fwd = q.forwarded_by(5)
        assert fwd.ttl == 6
        assert fwd.hops == 1
        assert fwd.sender == 5
        assert fwd.guid == q.guid
        assert fwd.object_id == 3

    def test_forward_at_zero_ttl_raises(self):
        q = Query(sender=0, ttl=0)
        with pytest.raises(ValueError, match="ttl"):
            q.forwarded_by(1)

    def test_chained_forwarding(self):
        q = Query(sender=0, ttl=3)
        q2 = q.forwarded_by(1).forwarded_by(2)
        assert q2.ttl == 1
        assert q2.hops == 2


class TestWireCost:
    def test_default_is_delay(self):
        assert wire_cost(Ping(sender=0), 10.0) == pytest.approx(10.0)

    def test_byte_factor_scales(self):
        msg = Pong(sender=0)
        cost = wire_cost(msg, 10.0, byte_factor=0.01)
        assert cost == pytest.approx(10.0 * (1 + 0.01 * msg.size_bytes))

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            wire_cost(Ping(sender=0), -1.0)

    def test_zero_delay_free(self):
        assert wire_cost(QueryHit(sender=0), 0.0) == 0.0
