"""Unit tests for message-level servent nodes."""

import pytest

from repro.search.flooding import blind_flooding_strategy
from repro.sim.messages import Query, QueryHit
from repro.sim.network import MessageNetwork
from repro.sim.node import QueryNode
from tests.conftest import make_overlay_from_weighted_edges


@pytest.fixture
def chain():
    return make_overlay_from_weighted_edges(
        [(0, 1, 2.0), (1, 2, 3.0)]
    )


def wire(overlay, holders=()):
    network = MessageNetwork(overlay)
    nodes = {}
    strategy = blind_flooding_strategy(overlay)
    for peer in overlay.peers():
        node = QueryNode(peer, strategy, holds={"obj"} if peer in holders else None)
        nodes[peer] = node
        network.attach(peer, node)
    return network, nodes


class TestQueryHandling:
    def test_start_query_marks_origin(self, chain):
        network, nodes = wire(chain)
        query = nodes[0].start_query(network, "obj", None)
        assert query.guid in nodes[0].seen_queries
        assert nodes[0].first_arrival[query.guid] == 0.0
        assert query.guid in nodes[0].responses

    def test_duplicate_counted_not_reforwarded(self, chain):
        network, nodes = wire(chain)
        query = Query(sender=0, ttl=5, object_id="obj")
        nodes[1].on_message(network, query, 0, 1.0)
        nodes[1].on_message(network, query, 2, 2.0)
        assert nodes[1].duplicates == 1
        assert nodes[1].first_arrival[query.guid] == 1.0

    def test_ttl_zero_not_forwarded(self, chain):
        network, nodes = wire(chain)
        query = Query(sender=0, ttl=0, object_id="obj")
        nodes[1].on_message(network, query, 0, 1.0)
        network.run()
        # Node 1 recorded it but sent nothing (ttl exhausted).
        assert query.guid in nodes[1].seen_queries
        assert network.stats.messages == 0

    def test_reverse_route_recorded(self, chain):
        network, nodes = wire(chain)
        query = Query(sender=0, ttl=5, object_id="obj")
        nodes[1].on_message(network, query, 0, 1.0)
        assert nodes[1].reverse_route[query.guid] == 0


class TestHitHandling:
    def test_holder_responds_toward_sender(self, chain):
        network, nodes = wire(chain, holders={1})
        query = Query(sender=0, ttl=5, object_id="obj")
        nodes[1].on_message(network, query, 0, 2.0)
        network.run()
        assert network.stats.by_kind.get("query_hit", 0) >= 1

    def test_hit_without_route_dies(self, chain):
        network, nodes = wire(chain)
        hit = QueryHit(sender=2, guid=12345, ttl=5, object_id="obj", responder=2)
        nodes[1].on_message(network, hit, 2, 1.0)
        network.run()
        # Node 1 never saw the query, has no reverse route: nothing sent.
        assert network.stats.by_kind.get("query_hit", 0) == 0

    def test_origin_records_response(self, chain):
        network, nodes = wire(chain, holders={2})
        nodes[0].start_query(network, "obj", None)
        network.run()
        responses = next(iter(nodes[0].responses.values()))
        assert len(responses) == 1
        time, responder = responses[0]
        assert responder == 2
        assert time == pytest.approx(2 * (2.0 + 3.0))


class TestNetworkAttachment:
    def test_attach_unknown_peer_rejected(self, chain):
        network = MessageNetwork(chain)
        with pytest.raises(KeyError):
            network.attach(99, QueryNode(99, blind_flooding_strategy(chain)))

    def test_detach_stops_delivery(self, chain):
        network, nodes = wire(chain)
        network.detach(1)
        query = nodes[0].start_query(network, "obj", None)
        network.run()
        assert query.guid not in nodes[1].seen_queries
        # The transmission itself was still charged.
        assert network.stats.messages >= 1

    def test_handler_of(self, chain):
        network, nodes = wire(chain)
        assert network.handler_of(0) is nodes[0]
        network.detach(0)
        assert network.handler_of(0) is None
