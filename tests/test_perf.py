"""Perf-counter and hot-path regression tests.

These pin the performance architecture of the delay/cost pipeline (see
``docs/PERFORMANCE.md``): batched Dijkstra solves, the per-overlay edge-cost
cache, and — the headline regression — **zero Dijkstra runs during query
propagation on a warmed static overlay**.

The ``perf_smoke`` marker selects the fast subset that keeps the batch APIs
and counters exercised in every tier-1 run (``pytest -m perf_smoke``).
"""

import numpy as np
import pytest

from repro.core.ace import AceConfig, AceProtocol
from repro.experiments.dynamic_env import DynamicConfig, run_dynamic_experiment
from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.experiments.static_env import run_static_experiment
from repro.perf import PerfCounters, counters, get_counters, reset_counters
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.topology.overlay import Overlay, small_world_overlay
from repro.topology.physical import PhysicalTopology


@pytest.fixture(autouse=True)
def _clean_counters():
    """Each test observes its own counter deltas from zero."""
    reset_counters()
    yield
    reset_counters()


class TestPerfCounters:
    def test_global_instance_identity(self):
        assert get_counters() is counters

    def test_reset_zeroes_everything(self):
        counters.dijkstra_runs = 7
        counters.query_seconds = 1.5
        counters.reset()
        assert counters.dijkstra_runs == 0
        assert counters.query_seconds == 0.0

    def test_snapshot_includes_derived_throughput(self):
        counters.queries = 10
        counters.query_seconds = 2.0
        snap = counters.snapshot()
        assert snap["queries"] == 10
        assert snap["queries_per_second"] == pytest.approx(5.0)

    def test_queries_per_second_zero_when_idle(self):
        assert PerfCounters().queries_per_second == 0.0

    def test_delta_between_snapshots(self):
        before = counters.copy()
        counters.dijkstra_runs += 3
        counters.largest_batch = 12
        delta = counters.delta(before)
        assert delta["dijkstra_runs"] == 3
        assert delta["largest_batch"] == 12  # high-water mark, not a diff

    def test_format_is_human_readable(self):
        text = counters.format()
        assert "dijkstra" in text and "queries" in text


@pytest.mark.perf_smoke
class TestBatchingCounters:
    def test_batched_solve_counts_one_run_many_sources(self, line_physical):
        line_physical.delays_from_many([0, 1, 2, 3])
        assert counters.dijkstra_runs == 1
        assert counters.dijkstra_sources == 4
        assert counters.largest_batch == 4

    def test_warm_then_lookup_is_all_hits(self, line_physical):
        line_physical.warm(range(5))
        before = counters.copy()
        for u in range(5):
            for v in range(5):
                line_physical.delay(u, v)
        delta = counters.delta(before)
        assert delta["dijkstra_runs"] == 0
        assert delta["delay_cache_misses"] == 0
        assert delta["delay_cache_hits"] > 0

    def test_single_source_path_still_counted(self, line_physical):
        line_physical.delays_from(0)
        assert counters.dijkstra_runs == 1
        assert counters.dijkstra_sources == 1

    def test_overlay_warm_uses_batched_runs(self, ba_physical, rng):
        ov = small_world_overlay(ba_physical, 30, avg_degree=6, rng=rng)
        reset_counters()
        ov.warm_edge_costs()
        # One batched call (well under the chunk size) for all edge sources.
        assert counters.dijkstra_runs == 1
        assert counters.dijkstra_sources > 1


@pytest.mark.perf_smoke
class TestWarmedPropagationIsDijkstraFree:
    def test_propagate_runs_zero_dijkstras_on_warmed_overlay(
        self, ba_physical, rng
    ):
        ov = small_world_overlay(ba_physical, 40, avg_degree=6, rng=rng)
        ov.warm_edge_costs()
        strategy = blind_flooding_strategy(ov)
        before = counters.copy()
        for source in ov.peers()[:5]:
            prop = propagate(ov, source, strategy, ttl=None)
            assert prop.search_scope == ov.num_peers
        delta = counters.delta(before)
        assert delta["dijkstra_runs"] == 0
        assert delta["delay_cache_misses"] == 0
        assert delta["edge_cost_misses"] == 0
        assert delta["edge_cost_hits"] > 0
        assert delta["queries"] == 5
        assert delta["query_seconds"] > 0.0

    def test_warmed_ace_routing_is_dijkstra_free(self, ba_physical, rng):
        ov = small_world_overlay(ba_physical, 30, avg_degree=6, rng=rng)
        protocol = AceProtocol(ov, AceConfig(depth=1), rng=np.random.default_rng(7))
        protocol.step()
        from repro.search.tree_routing import ace_strategy

        ov.warm_edge_costs()
        before = counters.copy()
        prop = propagate(ov, ov.peers()[0], ace_strategy(protocol), ttl=None)
        delta = counters.delta(before)
        assert prop.search_scope == ov.num_peers
        assert delta["dijkstra_runs"] == 0


class TestInvalidationUnderMutation:
    def test_churn_rejoin_recomputes_not_reuses(self, grid_physical):
        # A peer leaves host 3 and rejoins on host 15; the first cost lookup
        # of the re-established edge must be a miss (stale entry evicted),
        # and the value must reflect the *new* host's underlay delay.
        ov = Overlay(grid_physical, {0: 0, 1: 3})
        ov.connect(0, 1)
        ov.warm_edge_costs()
        ov.remove_peer(1)
        ov.add_peer(1, 15)
        ov.connect(0, 1)
        before = counters.copy()
        cost = ov.cost(0, 1)
        delta = counters.delta(before)
        assert cost == pytest.approx(grid_physical.delay(0, 15))
        assert delta["edge_cost_hits"] == 0
        assert delta["edge_cost_misses"] == 1

    def test_ace_rewiring_keeps_cache_consistent(self, ba_physical, rng):
        ov = small_world_overlay(ba_physical, 30, avg_degree=6, rng=rng)
        protocol = AceProtocol(ov, AceConfig(depth=1), rng=np.random.default_rng(3))
        protocol.run(2)  # cuts and establishes connections
        ov.warm_edge_costs()
        # Every cached entry must match a live edge and its underlay delay.
        assert ov.cached_edge_costs == ov.num_edges
        for u, v in ov.edges():
            hu, hv = ov.host_of(u), ov.host_of(v)
            assert ov.cost(u, v) == pytest.approx(ba_physical.delay(hu, hv))

    def test_stale_entries_dropped_on_disconnect(self, grid_physical):
        ov = Overlay(grid_physical, {0: 0, 1: 3, 2: 12})
        ov.connect(0, 1)
        ov.connect(1, 2)
        ov.warm_edge_costs()
        assert ov.cached_edge_costs == 2
        ov.disconnect(0, 1)
        ov.disconnect(1, 2)
        assert ov.cached_edge_costs == 0


class TestExperimentDijkstraBudgets:
    """Counter-driven regression gate for the experiment drivers.

    With fixed seeds the Dijkstra workload of an experiment is exactly
    reproducible (observed: static 32 runs / 63 sources, dynamic 56 runs /
    81 sources on this scenario).  The budgets below carry ~25-35% headroom
    so legitimate small reworks fit, while a regression to per-pair scalar
    lookups — tens of *thousands* of sources at this scale — fails loudly.
    """

    SCENARIO = ScenarioConfig(physical_nodes=200, peers=40, avg_degree=6, seed=5)

    def test_static_experiment_stays_within_budget(self):
        scenario = build_scenario(self.SCENARIO)
        reset_counters()
        run_static_experiment(scenario, steps=3, query_samples=8)
        assert counters.dijkstra_runs <= 40
        assert counters.dijkstra_sources <= 85

    def test_dynamic_experiment_stays_within_budget(self):
        scenario = build_scenario(self.SCENARIO)
        reset_counters()
        run_dynamic_experiment(
            scenario, DynamicConfig(total_queries=120, window=40)
        )
        assert counters.dijkstra_runs <= 75
        assert counters.dijkstra_sources <= 110

    def test_budgets_are_run_to_run_stable(self):
        # The gate only works because the counts are deterministic: two
        # identically-seeded runs must spend the identical Dijkstra workload.
        scenario = build_scenario(self.SCENARIO)
        reset_counters()
        run_static_experiment(scenario, steps=3, query_samples=8)
        first = (counters.dijkstra_runs, counters.dijkstra_sources)
        reset_counters()
        run_static_experiment(build_scenario(self.SCENARIO), steps=3,
                              query_samples=8)
        assert (counters.dijkstra_runs, counters.dijkstra_sources) == first


@pytest.mark.perf_smoke
class TestPerfSmoke:
    """Fast end-to-end smoke of the batch APIs + counters (tier-1)."""

    def test_batch_warm_query_cycle(self):
        phys = PhysicalTopology(
            16,
            [(i, i + 1) for i in range(15)] + [(0, 15)],
            [1.0] * 16,
            cache_size=4,
        )
        ov = Overlay(phys, {i: i for i in range(8)})
        for i in range(7):
            ov.connect(i, i + 1)
        solved = ov.warm_edge_costs()
        assert solved == ov.num_edges
        ov.warm_sources(ov.peers())
        before = counters.copy()
        prop = propagate(ov, 0, blind_flooding_strategy(ov), ttl=None)
        delta = counters.delta(before)
        assert prop.search_scope == 8
        assert delta["dijkstra_runs"] == 0
        snap = counters.snapshot()
        assert snap["queries"] >= 1
