"""The pytest bridge: the repository must satisfy its own invariants.

This is what wires replint into tier-1 — a REP00x violation anywhere in
``src/`` or ``tests/`` fails the test suite, not just CI.
"""

import subprocess
import sys
from pathlib import Path

from tools.replint import check_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_and_tests_satisfy_all_invariants():
    violations = check_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    formatted = "\n".join(v.format() for v in violations)
    assert not violations, f"replint violations:\n{formatted}"


def test_cli_self_check_is_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.replint", "src", "tests"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "replint: clean" in proc.stdout
