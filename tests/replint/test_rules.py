"""Rule tests: every rule catches its seed-era bad fixture and passes the
rewritten good one, and suppression comments behave."""

from pathlib import Path

from tools.replint import check_file, default_rules
from tools.replint.rules import rules_by_code

FIXTURES = Path(__file__).parent / "fixtures"


def run_rule(code, relpath):
    return check_file(FIXTURES / relpath, [rules_by_code()[code]])


def lines(violations):
    return sorted(v.line for v in violations)


class TestDeterminism:
    def test_bad_fixture_catches_every_seed_era_pattern(self):
        violations = run_rule("REP001", "rep001_bad.py")
        assert all(v.code == "REP001" for v in violations)
        # the `rng or np.random.default_rng()` fallback, the legacy
        # np.random.rand, stdlib random.random, and a module-level ambient rng
        assert lines(violations) == [11, 16, 20, 23]

    def test_unseeded_fallback_message_points_at_ensure_rng(self):
        violations = run_rule("REP001", "rep001_bad.py")
        fallback = [v for v in violations if v.line == 11]
        assert "ensure_rng" in fallback[0].message

    def test_good_fixture_is_clean(self):
        assert run_rule("REP001", "rep001_good.py") == []

    def test_wall_clock_flagged_inside_sim_modules(self):
        violations = run_rule(
            "REP001", "src/repro/sim/rep001_wallclock_bad.py"
        )
        # time.time() and the `from time import time as now` alias; the
        # perf_counter call stays allowed.
        assert lines(violations) == [8, 12]
        assert all("wall-clock" in v.message for v in violations)

    def test_wall_clock_allowed_outside_sim_logic(self, tmp_path):
        source = (FIXTURES / "src/repro/sim/rep001_wallclock_bad.py").read_text()
        elsewhere = tmp_path / "bench_helper.py"
        elsewhere.write_text(source)
        assert check_file(elsewhere, [rules_by_code()["REP001"]]) == []


class TestCacheCoherence:
    def test_bad_fixture_catches_both_contract_sides(self):
        violations = run_rule("REP002", "rep002_bad.py")
        assert all(v.code == "REP002" for v in violations)
        # ownership: _edge_costs, _dist_cache, _pred_cache from outside;
        # mutate-without-invalidate: disconnect() and remove_peer().
        assert lines(violations) == [7, 12, 16, 23, 27]

    def test_cross_class_edge_costs_read_is_named(self):
        violations = run_rule("REP002", "rep002_bad.py")
        ownership = [v for v in violations if v.line == 7]
        assert "Overlay._edge_costs" in ownership[0].message

    def test_mutation_without_invalidation_is_named(self):
        violations = run_rule("REP002", "rep002_bad.py")
        mutator = [v for v in violations if v.line == 23]
        assert "disconnect" in mutator[0].message
        assert "invalidate_edge_costs" in mutator[0].message

    def test_good_fixture_is_clean(self):
        # __init__, the add_peer empty-set idiom, pop-paired mutation, and
        # invalidator-paired rewiring are all sanctioned.
        assert run_rule("REP002", "rep002_good.py") == []


class TestLayering:
    def test_bad_fixture_catches_upward_and_private_imports(self):
        violations = run_rule("REP003", "src/repro/topology/rep003_bad.py")
        assert all(v.code == "REP003" for v in violations)
        # plain import of experiments, from-import of cli, a private name
        # from core, and a *relative* upward import of extensions.
        assert lines(violations) == [3, 4, 5, 6]

    def test_relative_upward_import_is_resolved(self):
        violations = run_rule("REP003", "src/repro/topology/rep003_bad.py")
        relative = [v for v in violations if v.line == 6]
        assert "repro.extensions" in relative[0].message

    def test_private_import_is_named(self):
        violations = run_rule("REP003", "src/repro/topology/rep003_bad.py")
        private = [v for v in violations if v.line == 5]
        assert "_component_of" in private[0].message

    def test_good_fixture_is_clean(self):
        assert run_rule("REP003", "src/repro/topology/rep003_good.py") == []


class TestPerfHygiene:
    def test_bad_fixture_catches_loop_body_scalar_lookups(self):
        violations = run_rule("REP004", "src/repro/core/rep004_bad.py")
        assert all(v.code == "REP004" for v in violations)
        # cost() in a for body and delay() in a while condition.
        assert lines(violations) == [7, 12]

    def test_message_suggests_batched_api(self):
        violations = run_rule("REP004", "src/repro/core/rep004_bad.py")
        assert any("costs_from" in v.message for v in violations)

    def test_good_fixture_is_clean(self):
        assert run_rule("REP004", "src/repro/core/rep004_good.py") == []

    def test_rule_only_audits_importable_modules(self, tmp_path):
        # Outside a src/ root there is no module name, and REP004 does not
        # apply — loops in test helpers are free to call cost().
        source = (FIXTURES / "src/repro/core/rep004_bad.py").read_text()
        helper = tmp_path / "helper.py"
        helper.write_text(source)
        assert check_file(helper, [rules_by_code()["REP004"]]) == []


class TestNoTopologyPickling:
    def test_bad_fixture_catches_every_pickling_route(self):
        violations = run_rule(
            "REP005", "src/repro/experiments/rep005_bad.py"
        )
        assert all(v.code == "REP005" for v in violations)
        # a name bound from build_underlay(), a scenario's .physical
        # attribute, a PhysicalTopology-annotated parameter, and an inline
        # build_scenario() inside the submission.
        assert lines(violations) == [10, 14, 18, 22]

    def test_message_points_at_the_shared_memory_path(self):
        violations = run_rule(
            "REP005", "src/repro/experiments/rep005_bad.py"
        )
        assert all(
            "export_shared" in v.message and "attach_shared" in v.message
            for v in violations
        )

    def test_good_fixture_is_clean(self):
        # The sanctioned shape: configs in submissions, handles in the
        # initializer, export/unlink owned by the parent.
        assert (
            run_rule("REP005", "src/repro/experiments/rep005_good.py") == []
        )

    def test_rule_only_audits_importable_modules(self, tmp_path):
        # Tests pickle topologies on purpose (round-trip coverage); outside
        # a src/ root the rule stays quiet.
        source = (
            FIXTURES / "src/repro/experiments/rep005_bad.py"
        ).read_text()
        helper = tmp_path / "helper.py"
        helper.write_text(source)
        assert check_file(helper, [rules_by_code()["REP005"]]) == []


class TestOracleSeam:
    def test_bad_fixture_catches_every_bypass_route(self):
        violations = run_rule("REP006", "src/repro/core/rep006_bad.py")
        assert all(v.code == "REP006" for v in violations)
        # .physical and ._physical receivers, a name bound from
        # build_underlay(), a PhysicalTopology-annotated parameter, and a
        # name bound from PhysicalTopology.attach_shared().
        assert lines(violations) == [8, 9, 15, 19, 24]

    def test_message_points_at_the_seam(self):
        violations = run_rule("REP006", "src/repro/core/rep006_bad.py")
        assert all("DelayOracle" in v.message for v in violations)

    def test_good_fixture_is_clean(self):
        # Overlay cost API, an oracle receiver, and a justified suppression.
        assert run_rule("REP006", "src/repro/core/rep006_good.py") == []

    def test_rule_scoped_to_core_and_search(self, tmp_path):
        # The same code is legitimate below the seam (topology/oracle build
        # on the engine) and outside src/ (tests, benchmarks).
        source = (FIXTURES / "src/repro/core/rep006_bad.py").read_text()
        below_seam = tmp_path / "src" / "repro" / "topology" / "helper.py"
        below_seam.parent.mkdir(parents=True)
        below_seam.write_text(source)
        assert check_file(below_seam, [rules_by_code()["REP006"]]) == []


class TestBatchedQueries:
    def test_bad_fixture_catches_scalar_query_loops(self):
        violations = run_rule(
            "REP007", "src/repro/experiments/rep007_bad.py"
        )
        assert all(v.code == "REP007" for v in violations)
        # run_query() in a for body, propagate() in a while body, and a
        # module-qualified ace_query() in a for body.
        assert lines(violations) == [9, 17, 24]

    def test_message_points_at_the_batched_api(self):
        violations = run_rule(
            "REP007", "src/repro/experiments/rep007_bad.py"
        )
        assert all(
            "run_queries" in v.message and "propagate_many" in v.message
            for v in violations
        )

    def test_good_fixture_is_clean(self):
        # Batched run_queries, a loop-free scalar call, the cached_query
        # stop_at flow, and a justified suppression are all sanctioned.
        assert (
            run_rule("REP007", "src/repro/experiments/rep007_good.py") == []
        )

    def test_rule_scoped_to_experiment_modules(self, tmp_path):
        # The scalar engine is the reference implementation: the search
        # layer's own fallback loop, tests, and benchmarks loop it freely.
        source = (
            FIXTURES / "src/repro/experiments/rep007_bad.py"
        ).read_text()
        below = tmp_path / "src" / "repro" / "search" / "helper.py"
        below.parent.mkdir(parents=True)
        below.write_text(source)
        assert check_file(below, [rules_by_code()["REP007"]]) == []


class TestSoaHygiene:
    def test_bad_fixture_catches_per_peer_scans(self):
        violations = run_rule("REP008", "src/repro/core/rep008_bad.py")
        assert all(v.code == "REP008" for v in violations)
        # a neighbors() scan, a nested neighbors()+cost() scan, and a
        # state_of() scan — one finding per offending for-statement.
        assert lines(violations) == [6, 13, 21]

    def test_message_names_the_accessors_and_the_bulk_apis(self):
        violations = run_rule("REP008", "src/repro/core/rep008_bad.py")
        nested = [v for v in violations if v.line == 13]
        assert ".cost()" in nested[0].message
        assert ".neighbors()" in nested[0].message
        assert "flooding_csr" in nested[0].message

    def test_good_fixture_is_clean(self):
        # Bulk APIs, loops over plain lists, accessor-free peers() loops,
        # and a justified suppression are all sanctioned.
        assert run_rule("REP008", "src/repro/core/rep008_good.py") == []

    def test_rule_scoped_to_engine_hot_packages(self, tmp_path):
        # Experiments/sim/tooling may scan peers; only repro.core and
        # repro.topology are interpreter-bound hot paths.
        source = (FIXTURES / "src/repro/core/rep008_bad.py").read_text()
        below = tmp_path / "src" / "repro" / "experiments" / "helper.py"
        below.parent.mkdir(parents=True)
        below.write_text(source)
        assert check_file(below, [rules_by_code()["REP008"]]) == []


class TestAceKernel:
    def test_bad_fixture_catches_scalar_refresh_loops(self):
        violations = run_rule("REP014", "src/repro/core/rep014_bad.py")
        assert all(v.code == "REP014" for v in violations)
        # a refresh_peer() loop, a neighbor_closure()+run_phase1() loop, an
        # async-for refresh, and a guarded refresh loop — one finding per
        # offending for-statement.
        assert lines(violations) == [6, 14, 22, 25]

    def test_message_names_the_helpers_and_the_kernel(self):
        violations = run_rule("REP014", "src/repro/core/rep014_bad.py")
        phase1 = [v for v in violations if v.line == 14]
        assert "neighbor_closure()" in phase1[0].message
        assert "run_phase1()" in phase1[0].message
        assert "batched_step" in phase1[0].message

    def test_good_fixture_is_clean(self):
        # Batched entry points, single-peer refreshes, helper-free loops
        # and a justified scalar reference loop are all sanctioned.
        assert run_rule("REP014", "src/repro/core/rep014_good.py") == []

    def test_rule_scoped_to_step_and_churn_driver_packages(self, tmp_path):
        # Benchmarks, tests and tooling may loop the scalar helpers; only
        # repro.core and repro.experiments host the hot drivers.
        source = (FIXTURES / "src/repro/core/rep014_bad.py").read_text()
        below = tmp_path / "src" / "repro" / "sim" / "helper.py"
        below.parent.mkdir(parents=True)
        below.write_text(source)
        assert check_file(below, [rules_by_code()["REP014"]]) == []


class TestSuppressions:
    def test_fully_suppressed_fixture_is_clean(self):
        assert check_file(FIXTURES / "suppressed.py", default_rules()) == []

    def test_disable_file_pragma_silences_whole_file(self):
        assert (
            check_file(FIXTURES / "suppressed_file.py", default_rules()) == []
        )

    def test_unsuppressed_and_wrong_code_lines_still_fire(self):
        violations = check_file(
            FIXTURES / "partially_suppressed.py", default_rules()
        )
        assert lines(violations) == [11, 15]
        assert all(v.code == "REP001" for v in violations)


class TestRngStreamDiscipline:
    def test_bad_fixture_catches_every_stream_hazard(self):
        violations = run_rule(
            "REP009", "src/repro/experiments/rep009_bad.py"
        )
        assert all(v.code == "REP009" for v in violations)
        # out-of-range (inline and named), re-spawn, out-of-order
        # consumption, double consumption, spawn on a parameter.
        assert lines(violations) == [9, 13, 19, 26, 33, 38]

    def test_out_of_range_message_names_the_pinned_window(self):
        violations = run_rule(
            "REP009", "src/repro/experiments/rep009_bad.py"
        )
        first = [v for v in violations if v.line == 9][0]
        assert "out of range" in first.message

    def test_cross_function_spawn_is_named(self):
        violations = run_rule(
            "REP009", "src/repro/experiments/rep009_bad.py"
        )
        cross = [v for v in violations if v.line == 38][0]
        assert "parameter" in cross.message

    def test_good_fixture_is_clean(self):
        # in-order consumption with gaps, inline spawn(5)[4], whole-list
        # iteration, and passing children down are all sanctioned.
        assert run_rule(
            "REP009", "src/repro/experiments/rep009_good.py"
        ) == []


class TestShmLifecycle:
    def test_bad_fixture_catches_leaks_and_attacher_unlink(self):
        violations = run_rule("REP010", "src/repro/topology/rep010_bad.py")
        assert all(v.code == "REP010" for v in violations)
        # unconditional leak, early-return leak, dropped handle,
        # attacher calling unlink.
        assert lines(violations) == [9, 14, 23, 29]

    def test_leak_message_points_at_the_escaping_return(self):
        violations = run_rule("REP010", "src/repro/topology/rep010_bad.py")
        early = [v for v in violations if v.line == 14][0]
        assert "line 16" in early.message

    def test_attacher_message_states_the_ownership_rule(self):
        violations = run_rule("REP010", "src/repro/topology/rep010_bad.py")
        attacher = [v for v in violations if v.line == 29][0]
        assert "never unlink" in attacher.message

    def test_good_fixture_is_clean(self):
        # try/finally loop unlink, context manager, transfer-by-return,
        # registry store, attacher close, owner-from-helper.
        assert run_rule(
            "REP010", "src/repro/topology/rep010_good.py"
        ) == []


class TestVersionBump:
    def test_bad_fixture_catches_every_unbumped_mutation(self):
        violations = run_rule("REP011", "src/repro/topology/rep011_bad.py")
        assert all(v.code == "REP011" for v in violations)
        # no bump at all, early return skipping the bump, mutation via a
        # local alias, uncalled private helper, flat-store drop + pop.
        assert lines(violations) == [14, 21, 30, 36, 48]

    def test_message_names_method_and_version_attr(self):
        violations = run_rule("REP011", "src/repro/topology/rep011_bad.py")
        first = [v for v in violations if v.line == 14][0]
        assert "add_peer" in first.message
        assert "_epoch" in first.message
        ace = [v for v in violations if v.line == 48][0]
        assert "_state_version" in ace.message

    def test_good_fixture_blesses_every_bump_idiom(self):
        # bump-after-mutate, bump-before-early-return, try/finally bump,
        # value-cache writes, private helper excused by bumping caller,
        # bump-iff-changed guards.
        assert run_rule(
            "REP011", "src/repro/topology/rep011_good.py"
        ) == []


class TestFloatOrderHazards:
    def test_bad_fixture_catches_every_reduction_hazard(self):
        violations = run_rule("REP012", "src/repro/core/rep012_bad.py")
        assert all(v.code == "REP012" for v in violations)
        # set-order sums (accessor and literal), keyed min/sorted over
        # sets, np.array materializing sets.
        assert lines(violations) == [8, 13, 18, 22, 26, 31]

    def test_message_prescribes_sorted_canonicalization(self):
        violations = run_rule("REP012", "src/repro/core/rep012_bad.py")
        assert "sorted" in violations[0].message

    def test_good_fixture_is_clean(self):
        # sorted-first reductions, unkeyed min, list sums, len() counting.
        assert run_rule("REP012", "src/repro/core/rep012_good.py") == []

    def test_rule_scoped_to_core_and_search(self, tmp_path):
        source = (FIXTURES / "src/repro/core/rep012_bad.py").read_text()
        elsewhere = tmp_path / "src" / "repro" / "experiments" / "h.py"
        elsewhere.parent.mkdir(parents=True)
        elsewhere.write_text(source)
        assert check_file(elsewhere, [rules_by_code()["REP012"]]) == []


class TestSuppressionHygiene:
    def test_bare_pragma_is_flagged(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(
            "import random\n"
            "x = random.random()  # replint: disable=REP001\n"
        )
        violations = check_file(target, [rules_by_code()["REP013"]])
        assert [v.code for v in violations] == ["REP013"]
        assert "justification" in violations[0].message

    def test_justified_pragma_passes(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(
            "import random\n"
            "x = random.random()  # replint: disable=REP001 — demo seam\n"
        )
        assert check_file(target, [rules_by_code()["REP013"]]) == []

    def test_rep013_cannot_be_suppressed(self, tmp_path):
        # silencing the auditor with its own mechanism must not work
        target = tmp_path / "m.py"
        target.write_text(
            "# replint: disable-file=REP013\n"
            "import random\n"
            "x = random.random()  # replint: disable=REP001\n"
        )
        violations = check_file(target, [rules_by_code()["REP013"]])
        # both bare pragmas are flagged: the disable-file aimed at REP013
        # itself, and the line-level REP001 pragma it tried to shield
        assert [v.code for v in violations] == ["REP013", "REP013"]
        assert lines(violations) == [1, 3]


class TestNetBoundary:
    def test_blocking_io_below_net_is_flagged(self):
        violations = run_rule("REP015", "src/repro/search/rep015_bad.py")
        assert all(v.code == "REP015" for v in violations)
        # import socket, time.sleep, the `sleep as pause` alias,
        # time.time(), and the event loop's loop.time().
        assert lines(violations) == [3, 10, 11, 12, 13]

    def test_socket_message_names_the_boundary(self):
        violations = run_rule("REP015", "src/repro/search/rep015_bad.py")
        socket_v = [v for v in violations if v.line == 3]
        assert "repro.net" in socket_v[0].message
        sleep_v = [v for v in violations if v.line == 10]
        assert "asyncio.sleep" in sleep_v[0].message

    def test_duration_measurement_below_net_is_clean(self):
        assert run_rule("REP015", "src/repro/search/rep015_good.py") == []

    def test_net_importing_experiments_is_flagged(self):
        violations = run_rule("REP015", "src/repro/net/rep015_bad.py")
        assert all(v.code == "REP015" for v in violations)
        # plain import, from-import, and the relative upward import.
        assert lines(violations) == [3, 4, 5]
        relative = [v for v in violations if v.line == 5]
        assert "repro.experiments.setup" in relative[0].message

    def test_net_modules_may_use_sockets_and_clocks(self):
        assert run_rule("REP015", "src/repro/net/rep015_good.py") == []

    def test_sim_wall_clock_left_to_rep001(self):
        # One diagnostic per defect: REP001 owns wall-clock reads in
        # repro.sim/repro.core, so REP015 stays quiet there (it would
        # still flag sockets and sleeps in those packages).
        assert run_rule(
            "REP015", "src/repro/sim/rep001_wallclock_bad.py"
        ) == []

    def test_rule_scoped_to_repro_modules(self, tmp_path):
        # Outside a src/ root there is no module name: benchmarks and
        # test helpers may sleep and read the clock freely.
        source = (FIXTURES / "src/repro/search/rep015_bad.py").read_text()
        helper = tmp_path / "bench_helper.py"
        helper.write_text(source)
        assert check_file(helper, [rules_by_code()["REP015"]]) == []
