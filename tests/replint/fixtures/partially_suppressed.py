"""Suppression fixture: one violation suppressed, one left to fire."""

import random


def silenced():
    return random.random()  # replint: disable=REP001 — demo of a justified pragma


def still_fires():
    return random.random()


def wrong_code_does_not_help():
    return random.random()  # replint: disable=REP004 — wrong code on purpose
