"""REP002 fixture: cache-contract breakers, all of them bad."""


def peek_edge_costs(overlay, u, v):
    # Seed-era pattern: reaching into Overlay's private per-edge cache from
    # the outside instead of calling overlay.cost(u, v).
    return overlay._edge_costs.get((u, v))


def drop_dist_entry(topo, source):
    # Evicting from one LRU without the other desynchronises them.
    del topo._dist_cache[source]


def count_pred_entries(topo):
    return len(topo._pred_cache)


class Overlay:
    def disconnect(self, u, v):
        # Mutates the adjacency but never touches _edge_costs nor calls an
        # invalidator: stale costs survive the rewiring.
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)

    def remove_peer(self, peer):
        del self._adjacency[peer]
