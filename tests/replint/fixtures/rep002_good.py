"""REP002 fixture: cache-respecting code, all of it clean."""


def public_cost(overlay, u, v):
    return overlay.cost(u, v)


class Overlay:
    def __init__(self, adjacency):
        # __init__ builds both structures from scratch; exempt by design.
        self._adjacency = adjacency
        self._edge_costs = {}

    def add_peer(self, peer):
        # Creates no edges, so there is nothing to invalidate.
        self._adjacency[peer] = set()

    def disconnect(self, u, v):
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._edge_costs.pop((min(u, v), max(u, v)), None)

    def rewire(self, u, old, new):
        self._adjacency[u].discard(old)
        self._adjacency[u].add(new)
        self.invalidate_edge_costs(u)

    def invalidate_edge_costs(self, peer):
        pass


class SupernodeOverlay(Overlay):
    def collapse(self, members):
        self._adjacency.pop(members[-1], None)
        self.invalidate_edge_costs(members[-1])
