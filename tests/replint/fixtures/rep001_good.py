"""REP001 fixture: the sanctioned randomness patterns, all of them clean."""

import numpy as np

from repro.rng import ensure_rng


def threaded(rng=None):
    rng = ensure_rng(rng)
    return rng.random()


def explicitly_seeded(seed):
    return np.random.default_rng(seed).random()


def derived_streams(seed):
    streams = np.random.SeedSequence(seed).spawn(2)
    return [np.random.default_rng(s) for s in streams]
