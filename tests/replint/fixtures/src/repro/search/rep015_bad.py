"""REP015 fixture: blocking I/O and wall clock leaked below repro.net."""

import socket
import time
from time import sleep as pause


def wait_for_peer(loop, address):
    conn = socket.create_connection(address)
    time.sleep(0.5)
    pause(0.1)
    started = time.time()
    deadline = loop.time() + 5.0
    return conn, started, deadline
