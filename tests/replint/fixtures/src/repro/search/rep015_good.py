"""REP015 fixture: duration measurement below repro.net is sanctioned."""

import time


def measure(work):
    started = time.perf_counter()
    work()
    return time.perf_counter() - started
