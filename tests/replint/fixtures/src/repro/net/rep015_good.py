"""REP015 fixture: sockets, sleeps and clocks are at home inside repro.net."""

import asyncio
import socket
import time


async def wait_for_quiet(loop, seconds):
    time.sleep(0.0)
    await asyncio.sleep(seconds)
    return loop.time(), time.time(), socket.AF_INET
