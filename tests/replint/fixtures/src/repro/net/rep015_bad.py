"""REP015 fixture: the net runtime reaching up into the experiment layer."""

import repro.experiments.setup
from repro.experiments import runner
from ..experiments.setup import build_scenario


def build(config):
    return build_scenario(config), runner, repro.experiments.setup
