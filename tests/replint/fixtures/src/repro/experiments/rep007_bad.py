"""Fixture: seed-era scalar query loops in an experiment driver."""
from repro.search.flooding import propagate, run_query
from repro.search.tree_routing import ace_query


def measure(overlay, strategy, sources, holders):
    traffic = 0.0
    for src in sources:
        result = run_query(overlay, src, strategy, holders, ttl=None)
        traffic += result.traffic_cost
    return traffic


def sweep(overlay, strategy, sources):
    props = []
    while sources:
        props.append(propagate(overlay, sources.pop(), strategy))
    return props


def qualified_call_is_caught(search, overlay, strategy, sources, holders):
    out = []
    for src in sources:
        out.append(search.ace_query(overlay, src, strategy, holders))
    return out
