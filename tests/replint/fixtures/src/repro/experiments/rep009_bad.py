"""REP009 fixture: every seed-stream consumption hazard, one per function."""

from numpy.random import SeedSequence, default_rng


def out_of_range(seed):
    root = SeedSequence(seed)
    children = root.spawn(4)
    return default_rng(children[4])  # line 9: index 4 out of spawn(4)


def out_of_range_inline(seed):
    return default_rng(SeedSequence(seed).spawn(3)[5])  # line 13


def re_spawn(seed):
    root = SeedSequence(seed)
    first = root.spawn(2)
    second = root.spawn(2)  # line 19: stateful second spawn
    return first, second


def out_of_order(seed):
    children = SeedSequence(seed).spawn(4)
    oracle_rng = default_rng(children[3])
    underlay_rng = default_rng(children[0])  # line 26: 0 consumed after 3
    return underlay_rng, oracle_rng


def double_use(seed):
    children = SeedSequence(seed).spawn(4)
    a = default_rng(children[1])
    b = default_rng(children[1])  # line 33: child 1 consumed twice
    return a, b


def cross_function(shared_sequence):
    return shared_sequence.spawn(2)  # line 38: spawn on a parameter
