"""Fixture: only seeded configs cross the boundary; underlay via shm."""
from concurrent.futures import ProcessPoolExecutor

from repro.experiments.setup import (
    attach_shared_underlays,
    build_underlay,
    underlay_key,
)


def _trial(config):
    return config.seed


def fan_out(configs):
    exports = {
        underlay_key(c): build_underlay(c).export_shared() for c in configs
    }
    handles = {key: shared.handle for key, shared in exports.items()}
    try:
        with ProcessPoolExecutor(
            initializer=attach_shared_underlays, initargs=(handles,)
        ) as pool:
            return list(pool.map(_trial, configs))
    finally:
        for shared in exports.values():
            shared.unlink()
