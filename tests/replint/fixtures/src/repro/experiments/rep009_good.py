"""REP009 fixture: the blessed seed-stream idioms from repro.experiments."""

from numpy.random import SeedSequence, default_rng


def in_order(seed):
    children = SeedSequence(seed).spawn(4)
    underlay_rng = default_rng(children[0])
    query_rng = default_rng(children[1])
    churn_rng = default_rng(children[3])  # gaps are fine; reordering is not
    return underlay_rng, query_rng, churn_rng


def single_inline(seed):
    # spawn(5)[:4] == spawn(4): widening the spawn keeps old children pinned.
    return default_rng(SeedSequence(seed).spawn(5)[4])


def whole_list(seed):
    children = SeedSequence(seed).spawn(3)
    return [default_rng(child) for child in children]


def pass_children_down(seed):
    children = SeedSequence(seed).spawn(2)
    return consume(children)


def consume(children):
    # Receiving already-spawned children (not the SeedSequence) is the
    # blessed way to split allocation from use.
    return [default_rng(child) for child in children]
