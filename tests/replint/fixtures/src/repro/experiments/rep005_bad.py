"""Fixture: built topologies pickled into pool submissions (REP005)."""
from concurrent.futures import ProcessPoolExecutor

from repro.experiments.setup import build_scenario, build_underlay
from repro.topology.physical import PhysicalTopology


def submit_tracked_name(pool, config):
    physical = build_underlay(config)
    return pool.submit(len, physical)


def map_scenario_attribute(pool, scenario):
    return pool.map(len, [scenario.physical])


def submit_annotated_param(pool, world: PhysicalTopology):
    return pool.apply_async(len, (world,))


def submit_inline_build(pool, config):
    return pool.submit(len, build_scenario(config))
