"""Fixture: the sanctioned shapes — batched kernel, fallback, suppression."""
from repro.search.batch import run_queries
from repro.search.caching import cached_query
from repro.search.flooding import propagate, run_query


def measure(overlay, strategy, sources, catalog, rng):
    # The batched path: sample sequentially, propagate in one shot.
    queries = []
    for src in sources:
        queries.append((src, catalog.holders_of(catalog.sample_object(rng))))
    return sum(
        r.traffic_cost for r in run_queries(overlay, strategy, queries)
    )


def single_query(overlay, source, strategy, holders):
    # One scalar call outside any loop is fine (and run_queries handles
    # the batch-of-one case anyway).
    return run_query(overlay, source, strategy, holders)


def cached_flow(overlay, source, obj, holders, strategy, caches, events):
    # stop_at flows stay scalar by design; cached_query is not flagged.
    results = []
    for _ in events:
        results.append(
            cached_query(overlay, source, obj, holders, strategy, caches)
        )
    return results


def reference_comparison(overlay, strategy, sources):
    props = []
    for src in sources:
        # replint: disable=REP007 — cross-checks the batched kernel against
        # the scalar reference engine; the loop is the point.
        props.append(propagate(overlay, src, strategy))
    return props
