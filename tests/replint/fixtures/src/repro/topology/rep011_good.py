"""REP011 fixture: every blessed mutate-then-bump idiom."""


class Overlay:
    def __init__(self):
        self._hosts = {}
        self._adjacency = {}
        self._edge_costs = {}
        self._epoch = 0

    def add_peer(self, peer, host):
        if peer in self._hosts:
            return False
        self._hosts[peer] = host
        self._adjacency[peer] = set()
        self._epoch += 1
        return True

    def connect(self, u, v):
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._epoch += 1
        if u > v:
            return True  # fine: the bump already happened
        return True

    def remove_peer(self, peer):
        try:
            for other in list(self._adjacency[peer]):
                self._adjacency[other].discard(peer)
            del self._adjacency[peer]
            del self._hosts[peer]
        finally:
            self._epoch += 1

    def invalidate(self, u, v):
        # Value-cache writes are not structural: no bump required.
        self._edge_costs.pop((u, v), None)

    def _fill_slot(self, peer, host):
        # Private helper: every caller bumps, so the helper need not.
        self._hosts[peer] = host

    def adopt(self, peer, host):
        self._fill_slot(peer, host)
        self._epoch += 1


class AceProtocol:
    def __init__(self):
        self._states = {}
        self._flat = None
        self._state_version = 0

    def store_state(self, peer, state):
        if self._flat is not None:
            self._flat.put(peer, state)
        else:
            self._states[peer] = state
        self._state_version += 1

    def handle_peer_left(self, peer):
        # bump-iff-changed: the guard call is the mutation, and its falsy
        # branch means nothing changed.
        if self._flat is not None:
            if self._flat.drop(peer):
                self._state_version += 1
        elif self._states.pop(peer, None) is not None:
            self._state_version += 1
