"""REP011 fixture: tracked mutations that can escape without a bump."""


class Overlay:
    def __init__(self):
        self._hosts = {}
        self._adjacency = {}
        self._epoch = 0

    def add_peer(self, peer, host):
        if peer in self._hosts:
            return False
        self._hosts[peer] = host
        self._adjacency[peer] = set()
        return True  # line 15: mutated, never bumped

    def connect(self, u, v):
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        if u > v:
            return True  # line 23: early return skips the bump
        self._epoch += 1
        return True

    def disconnect(self, u, v):
        adj = self._adjacency
        adj[u].discard(v)  # line 29: mutation through a local alias
        adj[v].discard(u)
        return True

    def _rebuild_slot(self, peer, slot):
        # Private, but nobody in this file calls it: no caller can be
        # carrying the bump, so the helper itself is flagged.
        self._hosts[peer] = slot


class AceProtocol:
    def __init__(self):
        self._states = {}
        self._flat = None
        self._state_version = 0

    def handle_peer_left(self, peer):
        if self._flat is not None:
            self._flat.drop(peer)  # line 47: drop result ignored, no bump
        self._states.pop(peer, None)  # line 48: unconditional, no bump
        return None
