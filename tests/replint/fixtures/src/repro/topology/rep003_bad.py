"""REP003 fixture: a substrate module importing driver layers. All bad."""

import repro.experiments.static_env
from repro.cli import main
from repro.core.closure import _component_of
from ..extensions import ltm
