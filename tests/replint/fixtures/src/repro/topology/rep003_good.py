"""REP003 fixture: downward and sideways imports only. All clean."""

import repro.perf
from repro.topology.physical import PhysicalTopology
from . import generators
from .overlay import Overlay
