"""REP010 fixture: the blessed shared-memory lifecycles."""

from multiprocessing import shared_memory

from repro.topology.shm import SharedSegments, attach_array, export_arrays


def finally_unlinks(arrays):
    segments, specs = export_arrays(arrays)
    try:
        publish(specs)
        return specs
    finally:
        for seg in segments:
            seg.unlink()


def context_manager(arrays, specs):
    with SharedSegments(specs, []):
        return publish(specs)


def transfer_by_return(size):
    # Returning the handle transfers ownership to the caller.
    return shared_memory.SharedMemory(create=True, size=size)


def transfer_to_registry(registry, key, size):
    registry[key] = shared_memory.SharedMemory(create=True, size=size)


def attacher_closes(spec):
    seg, view = attach_array(spec)
    total = float(view.sum())
    seg.close()  # close only: the exporter owns the segment
    return total


def owner_from_helper(size):
    seg = transfer_by_return(size)
    try:
        return seg.name
    finally:
        seg.unlink()


def publish(specs):
    return list(specs)
