"""REP010 fixture: leaking owners and unlinking attachers."""

from multiprocessing import shared_memory

from repro.topology.shm import attach_array, export_arrays


def never_unlinked(arrays):
    segments, specs = export_arrays(arrays)  # line 9: owner never unlinked
    return list(specs)


def early_return_leak(arrays, dry_run):
    segments, specs = export_arrays(arrays)  # line 17: owner may leak
    if dry_run:
        return None  # leaks every segment
    for seg in segments:
        seg.unlink()
    return specs


def dropped_handle(size):
    shared_memory.SharedMemory(create=True, size=size)  # line 26: dropped


def attacher_unlinks(spec):
    seg, view = attach_array(spec)
    total = float(view.sum())
    seg.unlink()  # line 32: attachers must never unlink
    return total


def publish(specs):
    return list(specs)
