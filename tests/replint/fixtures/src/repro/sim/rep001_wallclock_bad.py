"""REP001 fixture: wall-clock reads inside simulation logic (src/repro/sim)."""

import time
from time import time as now


def timestamp_event():
    return time.time()


def imported_alias():
    return now()


def measurement_is_fine():
    # perf_counter measures durations, not wall-clock time: allowed.
    return time.perf_counter()
