"""REP014 fixture: per-peer scalar ACE refresh loops. All bad."""


def refresh_batch(protocol, batch):
    overhead = 0.0
    for peer in batch:
        _state, phase1 = protocol.refresh_peer(peer)
        overhead += phase1.total_overhead
    return overhead


def rebuild_tables(protocol, overlay, peers, depth):
    tables = {}
    for peer in peers:
        closure = neighbor_closure(overlay, peer, depth)
        tables[peer] = run_phase1(overlay, peer, closure)
    return tables


def churn_repair(protocol, affected):
    async def drain(queue):
        async for peer in queue:
            protocol.refresh_peer(peer)

    for peer in affected:
        if protocol.overlay.has_peer(peer):
            protocol.refresh_peer(peer)
    return drain
