"""REP008 fixture: per-peer Python scans in a hot package. All bad."""


def total_degree(overlay):
    total = 0
    for p in overlay.peers():
        total += len(overlay.neighbors(p))
    return total


def worst_edge(overlay):
    worst = 0.0
    for p in overlay.peers():
        for q in overlay.neighbors(p):
            worst = max(worst, overlay.cost(p, q))
    return worst


def count_optimized(protocol):
    n = 0
    for p in protocol.overlay.peers():
        if protocol.state_of(p) is not None:
            n += 1
    return n
