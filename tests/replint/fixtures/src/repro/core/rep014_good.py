"""REP014 fixture: batched kernel entry points and exempt shapes. Clean."""


def run_batch(protocol, batch):
    # The sanctioned path: one shared closure sweep for the whole batch.
    closures = extract_closures(protocol.overlay, batch, protocol.config.depth)
    return protocol.apply(closures)


def churn_repair(protocol, replacement, affected):
    # The vectorized churn driver refreshes the joiner plus every affected
    # peer in one batched re-extraction.
    return churn_refresh(protocol, replacement, affected)


def single_peer_join(protocol, peer):
    # One peer, no loop: the scalar refresh is the right tool.
    _state, phase1 = protocol.refresh_peer(peer)
    return phase1.total_overhead


def loop_without_scalar_helpers(protocol, batch):
    # Looping the batch is fine when the body never re-derives a closure.
    total = 0.0
    for peer in batch:
        total += protocol.last_overhead(peer)
    return total


def scalar_reference_loop(protocol, batch):
    overhead = 0.0
    # replint: disable=REP014 — scalar reference arm of the equality sweep
    for peer in batch:
        _state, phase1 = protocol.refresh_peer(peer)
        overhead += phase1.total_overhead
    return overhead
