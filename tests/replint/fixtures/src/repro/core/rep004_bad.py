"""REP004 fixture: scalar cache lookups inside loop bodies. All bad."""


def total_cost(overlay, peer, neighbors):
    total = 0.0
    for nbr in neighbors:
        total += overlay.cost(peer, nbr)
    return total


def wait_for_cheap_route(topo, a, b, budget):
    while topo.delay(a, b) > budget:
        budget *= 1.1
    return budget
