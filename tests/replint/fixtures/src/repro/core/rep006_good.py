"""The sanctioned shape: delays through the overlay or the oracle seam."""


def closure_costs(overlay, sources):
    return overlay.costs_from(sources[0], sources[1:])


def probe(overlay, u, v):
    return overlay.cost(u, v)


def oracle_probe(oracle, u, v):
    # A DelayOracle receiver is the seam itself, not a bypass of it.
    return oracle.delay(u, v)


def backend_comparison(overlay, u, v):
    # replint: disable=REP006 — diagnostic that must compare against exact
    return overlay.physical.delay(u, v)
