"""Seed-era pattern: core code querying the underlay engine directly."""

from repro.topology.generators import build_underlay
from repro.topology.physical import PhysicalTopology


def closure_costs(overlay, sources):
    vec = overlay.physical.delays_from(sources[0])
    rows = overlay._physical.delays_from_many(sources)
    return vec, rows


def probe(config, u, v):
    phys = build_underlay(config)
    return phys.delay(u, v)


def annotated_probe(physical: PhysicalTopology, u, v):
    return physical.delay(u, v)


def attached_probe(handle, u, v):
    phys = PhysicalTopology.attach_shared(handle)
    return phys.delay(u, v)
