"""REP012 fixture: order-dependent reductions over unordered collections."""

import numpy as np


def probe_cost(overlay, source, target, costs):
    pool = overlay.neighbors(target)  # set-valued accessor
    return sum(costs[h] for h in pool)  # line 8: float sum in set order


def literal_set(costs):
    pending = {3, 1, 2}
    return sum(costs[p] for p in pending)  # line 13


def keyed_min(overlay, source, costs):
    mutual = overlay.neighbors(source) & overlay.flooding_neighbors(source)
    return min(mutual, key=lambda n: costs[n])  # line 18: set-order ties


def keyed_sort(overlay, peer, costs):
    return sorted(overlay.neighbors(peer), key=lambda n: costs[n])  # line 22


def array_from_set(overlay, peer):
    return np.array(list(overlay.neighbors(peer)))  # line 26: set order


def direct_np_sum(overlay, peer, weights):
    reached = set(weights) & overlay.neighbors(peer)
    return np.sum(np.array(list(reached)))  # line 31
