"""REP008 fixture: bulk APIs and exempt shapes. All clean."""


def total_degree(overlay):
    # No per-peer accessor in the body: summing a precomputed row is fine.
    degrees = overlay.degree_array()
    total = 0
    for d in degrees:
        total += d
    return total


def warm_everything(overlay):
    # The sanctioned bulk path: one batched underlay solve, no scan.
    return overlay.warm_edge_costs()


def loop_over_plain_list(overlay, peers):
    # Iterating a materialized list is not a .peers() scan; follow-up
    # accessors on a cold path like this are REP004's concern, not ours.
    out = {}
    for p in peers:
        out[p] = sorted(overlay.neighbors(p))
    return out


def peers_loop_without_accessors(overlay, catalog):
    # Looping .peers() is fine when the body never faults per-peer engine
    # state.
    hits = 0
    for p in overlay.peers():
        if catalog.holds(p):
            hits += 1
    return hits


def justified_scan(overlay):
    # replint: disable=REP008 — one-time export on a cold path
    for p in overlay.peers():
        yield p, sorted(overlay.neighbors(p))
