"""REP012 fixture: canonical-order reductions (and harmless patterns)."""

import numpy as np


def probe_cost(overlay, source, target, costs):
    pool = sorted(overlay.neighbors(target))  # canonical order first
    return sum(costs[h] for h in pool)


def keyed_min_with_tiebreak(overlay, source, costs):
    mutual = overlay.neighbors(source) & overlay.flooding_neighbors(source)
    # sorted() without a key imposes a total order: fine.
    return min(sorted(mutual), key=lambda n: costs[n])


def unkeyed_min(overlay, source, costs):
    # min() without key= over floats is order-independent.
    return min(costs[h] for h in overlay.neighbors(source))


def list_sum(values):
    # Lists have a defined order; nothing to canonicalize.
    return sum(values)


def int_membership_sum(overlay, peer):
    # Counting (int arithmetic) is associative; still fine to sort, but a
    # len() never depends on iteration order.
    return len(overlay.neighbors(peer))


def array_from_sorted(overlay, peer):
    return np.array(sorted(overlay.neighbors(peer)))
