"""REP004 fixture: batched lookups and exempt constructs. All clean."""


def total_cost(overlay, peer, neighbors):
    return sum(overlay.costs_from(peer, neighbors).values())


def all_pairs(topo, sources):
    return topo.delays_from_many(sources)


def comprehensions_are_exempt(overlay, peer, neighbors):
    # A comprehension body is not a for-statement body; one-shot rows like
    # this read fine and REP004 leaves them alone.
    return {nbr: overlay.cost(peer, nbr) for nbr in neighbors}


def loop_over_precomputed(overlay, peer, neighbors):
    row = overlay.costs_from(peer, neighbors)
    worst = 0.0
    for nbr in neighbors:
        worst = max(worst, row[nbr])
    return worst
