"""Suppression fixture: every violation here carries a pragma."""

import random

import numpy as np


def trailing_pragma():
    return random.random()  # replint: disable=REP001 — jitter only, never replayed


def preceding_comment_block():
    # This block explains at length why ambient entropy is acceptable in
    # this one spot, then suppresses the check for the line that follows.
    # replint: disable=REP001 — unseeded generator feeds a smoke probe only
    return np.random.default_rng()
