"""Suppression fixture: a whole-file pragma silences REP001 everywhere."""
# replint: disable-file=REP001 — fixture exercises whole-file opt-out

import random


def first():
    return random.random()


def second():
    return random.choice([1, 2, 3])
