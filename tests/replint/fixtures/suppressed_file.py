"""Suppression fixture: a whole-file pragma silences REP001 everywhere."""
# replint: disable-file=REP001

import random


def first():
    return random.random()


def second():
    return random.choice([1, 2, 3])
