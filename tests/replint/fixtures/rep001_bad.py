"""REP001 fixture: the seed-era nondeterminism patterns, all of them bad."""

import random

import numpy as np


def seed_era_fallback(rng=None):
    # The exact pattern PR 2 eradicated from src/: a forgotten rng argument
    # silently means fresh OS entropy and a different world every run.
    rng = rng or np.random.default_rng()
    return rng.random()


def legacy_global_numpy():
    return np.random.rand(4)


def stdlib_global_random():
    return random.random()


AMBIENT = np.random.default_rng()
