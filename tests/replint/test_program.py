"""Whole-program engine tests: symbol index, call graph, dataflow core,
and the edge cases the index build must survive (syntax errors, namespace
packages, fixture exclusion)."""

import ast
import textwrap
from pathlib import Path

from tools.replint import check_paths
from tools.replint.engine import (
    PARSE_ERROR_CODE,
    iter_python_files,
    load_context,
)
from tools.replint.program import (
    ObligationFailure,
    ProgramIndex,
    check_obligation,
    collect_bindings,
    walk_no_nested,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def build_index(tmp_path, files):
    """Write {relpath: source} under tmp_path and index the tree."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    contexts = []
    for path in iter_python_files([tmp_path]):
        ctx = load_context(path)
        if ctx is not None:
            contexts.append(ctx)
    return ProgramIndex.build(contexts)


class TestSymbolIndex:
    def test_functions_methods_and_classes_are_indexed(self, tmp_path):
        index = build_index(tmp_path, {
            "src/repro/widget.py": """
                class Widget:
                    def mutate(self):
                        pass

                def helper():
                    pass
            """,
        })
        names = {info.qualname for info in index.functions.values()}
        assert "repro.widget:Widget.mutate" in names
        assert "repro.widget:helper" in names
        assert any(c.name == "Widget" for c in index.classes.values())

    def test_private_name_convention(self, tmp_path):
        index = build_index(tmp_path, {
            "src/repro/m.py": """
                def _hidden():
                    pass

                def __dunder__():
                    pass
            """,
        })
        by_name = {i.name: i for i in index.functions.values()}
        assert by_name["_hidden"].is_private
        assert not by_name["__dunder__"].is_private


class TestCallGraph:
    def test_same_module_call_resolves(self, tmp_path):
        index = build_index(tmp_path, {
            "src/repro/m.py": """
                def callee():
                    pass

                def caller():
                    callee()
            """,
        })
        callers = index.callers_of.get("repro.m:callee", [])
        assert [c.caller for c in callers] == ["repro.m:caller"]

    def test_self_method_call_resolves(self, tmp_path):
        index = build_index(tmp_path, {
            "src/repro/m.py": """
                class Box:
                    def _fill(self):
                        pass

                    def pack(self):
                        self._fill()
            """,
        })
        callers = index.callers_of.get("repro.m:Box._fill", [])
        assert [c.caller for c in callers] == ["repro.m:Box.pack"]

    def test_from_import_call_resolves(self, tmp_path):
        index = build_index(tmp_path, {
            "src/repro/a.py": """
                def shared():
                    pass
            """,
            "src/repro/b.py": """
                from repro.a import shared

                def user():
                    shared()
            """,
        })
        callers = index.callers_of.get("repro.a:shared", [])
        assert [c.caller for c in callers] == ["repro.b:user"]

    def test_constructor_typing_resolves_later_method_calls(self, tmp_path):
        index = build_index(tmp_path, {
            "src/repro/m.py": """
                class Store:
                    def put(self, k):
                        pass

                def writer():
                    s = Store()
                    s.put(1)
            """,
        })
        callers = index.callers_of.get("repro.m:Store.put", [])
        assert [c.caller for c in callers] == ["repro.m:writer"]

    def test_nested_defs_do_not_double_attribute_calls(self, tmp_path):
        index = build_index(tmp_path, {
            "src/repro/m.py": """
                def target():
                    pass

                def outer():
                    def inner():
                        target()
                    return inner
            """,
        })
        callers = sorted(c.caller for c in index.callers_of.get("repro.m:target", []))
        # only the nested function owns the call site
        assert callers == ["repro.m:outer.inner"]

    def test_subclasses_of_uses_textual_bases(self, tmp_path):
        index = build_index(tmp_path, {
            "src/repro/m.py": """
                class Base:
                    pass

                class Mid(Base):
                    pass

                class Leaf(Mid):
                    pass
            """,
        })
        assert {c.name for c in index.subclasses_of("Base")} == {"Base", "Mid", "Leaf"}


class TestDataflowCore:
    def check(self, source, *, exit_ok=None):
        tree = ast.parse(textwrap.dedent(source))
        body = tree.body[0].body  # first function's statements

        def is_trigger(node):
            return isinstance(node, ast.Expr) and ast.unparse(node).startswith(
                "trigger"
            )

        def is_release(node):
            return isinstance(node, ast.Expr) and ast.unparse(node).startswith(
                "release"
            )

        return check_obligation(
            body, is_trigger, is_release, exit_ok=exit_ok
        )

    def test_trigger_then_release_is_clean(self):
        assert self.check("""
            def f():
                trigger()
                release()
                return 1
        """) == []

    def test_trigger_without_release_fails_each_exit(self):
        failures = self.check("""
            def f():
                trigger()
                return 1
        """)
        assert len(failures) == 1
        assert failures[0].kind == "return"

    def test_early_return_before_release_fails(self):
        failures = self.check("""
            def f(flag):
                trigger()
                if flag:
                    return None
                release()
                return 1
        """)
        assert len(failures) == 1

    def test_finally_release_rescues_every_path(self):
        assert self.check("""
            def f(flag):
                try:
                    trigger()
                    if flag:
                        return None
                    return 1
                finally:
                    release()
        """) == []

    def test_raise_exits_owe_nothing(self):
        assert self.check("""
            def f(flag):
                trigger()
                if flag:
                    raise ValueError("no obligation on error exits")
                release()
        """) == []

    def test_exit_ok_callback_excuses_ownership_transfer(self):
        failures = self.check(
            """
            def f():
                trigger()
                return handoff()
            """,
            exit_ok=lambda node: True,
        )
        assert failures == []

    def test_loop_zero_iteration_conservatism(self):
        failures = self.check("""
            def f(items):
                trigger()
                for item in items:
                    release()
                return 1
        """)
        # the loop may run zero times, so the release cannot be counted on
        assert len(failures) == 1

    def test_walk_no_nested_fences_inner_defs(self):
        tree = ast.parse(textwrap.dedent("""
            def outer():
                a = 1
                def inner():
                    b = 2
                return a
        """))
        names = [
            n.id for n in walk_no_nested(tree.body[0])
            if isinstance(n, ast.Name)
        ]
        assert "a" in names
        assert "b" not in names

    def test_collect_bindings_records_assignment_forms(self):
        tree = ast.parse(textwrap.dedent("""
            def f(pairs):
                x = make()
                y, z = pairs
                for w in pairs:
                    pass
        """))
        bindings = collect_bindings(tree.body[0].body)
        assert {"x", "y", "z", "w"} <= set(bindings)
        assert bindings["y"][0].via == "unpack"


class TestIndexBuildEdgeCases:
    def test_syntax_error_file_reports_finding_not_crash(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("def ok():\n    return 1\n")
        broken = tmp_path / "broken.py"
        broken.write_text("def nope(:\n")
        violations = check_paths([tmp_path])
        parse_errors = [v for v in violations if v.code == PARSE_ERROR_CODE]
        assert len(parse_errors) == 1
        assert parse_errors[0].path.endswith("broken.py")

    def test_namespace_package_modules_are_indexed(self, tmp_path):
        # no __init__.py anywhere: module naming must still work
        index = build_index(tmp_path, {
            "src/repro/ns/mod.py": """
                def lonely():
                    pass
            """,
        })
        assert any(
            info.qualname == "repro.ns.mod:lonely"
            for info in index.functions.values()
        )

    def test_fixture_tree_is_excluded_from_real_program_index(self):
        # The repository self-check walks tests/replint too; the fixtures
        # directory (full of deliberate violations) must never make it
        # into the index or the findings.
        violations = check_paths([REPO_ROOT / "tests" / "replint"])
        assert [v for v in violations if "fixtures" in v.path] == []

    def test_ast_cache_reuses_contexts_across_calls(self, tmp_path):
        target = tmp_path / "cached.py"
        target.write_text("def f():\n    return 1\n")
        first = load_context(target)
        second = load_context(target)
        assert first is second
        # touching the file (mtime/size change) invalidates the entry
        target.write_text("def f():\n    return 2  # changed\n")
        third = load_context(target)
        assert third is not first
