"""Engine-level tests: pragmas, module resolution, discovery, CLI."""

from pathlib import Path

from tools.replint import check_file, default_rules, iter_python_files
from tools.replint.__main__ import main
from tools.replint.engine import (
    PARSE_ERROR_CODE,
    Violation,
    module_name_for,
    parse_suppressions,
)

FIXTURES = Path(__file__).parent / "fixtures"


class TestPragmaParsing:
    def test_trailing_pragma_applies_to_its_line(self):
        table = parse_suppressions("x = 1  # replint: disable=REP001\n")
        assert table.is_suppressed(1, "REP001")
        assert not table.is_suppressed(1, "REP002")
        assert not table.is_suppressed(2, "REP001")

    def test_multiple_codes(self):
        table = parse_suppressions("x = 1  # replint: disable=REP001,REP002\n")
        assert table.is_suppressed(1, "REP001")
        assert table.is_suppressed(1, "REP002")
        assert not table.is_suppressed(1, "REP003")

    def test_bare_disable_silences_every_code(self):
        table = parse_suppressions("x = 1  # replint: disable\n")
        assert table.is_suppressed(1, "REP001")
        assert table.is_suppressed(1, "REP004")

    def test_justification_text_after_codes_still_suppresses(self):
        table = parse_suppressions(
            "x = 1  # replint: disable=REP004 — served from the warm cache\n"
        )
        assert table.is_suppressed(1, "REP004")
        assert not table.is_suppressed(1, "REP001")

    def test_comment_only_pragma_attaches_to_next_code_line(self):
        src = "# replint: disable=REP001\nx = 1\n"
        table = parse_suppressions(src)
        assert table.is_suppressed(2, "REP001")

    def test_pragma_walks_through_comment_block_to_code(self):
        src = (
            "# replint: disable=REP001 — long justification\n"
            "# that continues on a second comment line\n"
            "# and a third\n"
            "x = 1\n"
        )
        table = parse_suppressions(src)
        assert table.is_suppressed(4, "REP001")
        assert not table.is_suppressed(2, "REP001")

    def test_disable_file_silences_everywhere(self):
        src = "# replint: disable-file=REP001\nx = 1\ny = 2\n"
        table = parse_suppressions(src)
        assert table.is_suppressed(2, "REP001")
        assert table.is_suppressed(99, "REP001")
        assert not table.is_suppressed(2, "REP002")

    def test_unrelated_comments_are_not_pragmas(self):
        src = "# regular comment\nx = 1  # replint? no\n# replint: enable=X\n"
        table = parse_suppressions(src)
        assert not table.by_line and not table.whole_file


class TestModuleNameFor:
    def test_plain_module_under_src(self):
        assert (
            module_name_for(Path("src/repro/topology/overlay.py"))
            == "repro.topology.overlay"
        )

    def test_package_init_collapses(self):
        assert module_name_for(Path("src/repro/__init__.py")) == "repro"

    def test_fixture_trees_resolve_like_real_source(self):
        path = Path("tests/replint/fixtures/src/repro/sim/x.py")
        assert module_name_for(path) == "repro.sim.x"

    def test_last_src_component_wins(self):
        assert module_name_for(Path("src/a/src/b/mod.py")) == "b.mod"

    def test_files_outside_src_have_no_module(self):
        assert module_name_for(Path("tests/test_perf.py")) is None


class TestDiscovery:
    def test_fixtures_directories_are_skipped_by_default(self):
        found = list(iter_python_files([FIXTURES.parent]))
        assert found, "the tests/replint directory itself has python files"
        assert not [p for p in found if "fixtures" in p.parts]

    def test_explicit_file_is_always_checked(self):
        target = FIXTURES / "rep001_bad.py"
        assert list(iter_python_files([target])) == [target]

    def test_parse_error_is_a_rep000_violation(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        violations = check_file(bad, default_rules())
        assert len(violations) == 1
        assert violations[0].code == PARSE_ERROR_CODE

    def test_violation_format_and_ordering(self):
        a = Violation("a.py", 3, 1, "REP001", "first")
        b = Violation("a.py", 10, 1, "REP001", "second")
        c = Violation("b.py", 1, 1, "REP002", "third")
        assert sorted([c, b, a]) == [a, b, c]
        assert a.format() == "a.py:3:1: REP001 first"


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        rc = main([str(FIXTURES / "rep001_good.py")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "replint: clean" in out

    def test_violations_exit_one_with_conventional_lines(self, capsys):
        target = FIXTURES / "rep001_bad.py"
        rc = main([str(target), "--rules", "REP001"])
        out = capsys.readouterr().out
        assert rc == 1
        assert f"{target}:11:" in out
        assert "REP001" in out
        assert "violation(s) [REP001]" in out

    def test_quiet_suppresses_summary(self, capsys):
        rc = main([str(FIXTURES / "rep001_good.py"), "-q"])
        assert rc == 0
        assert capsys.readouterr().out == ""

    def test_fixtures_dir_is_clean_unless_included(self, capsys):
        assert main([str(FIXTURES)]) == 0
        capsys.readouterr()
        assert main([str(FIXTURES), "--include-fixtures"]) == 1

    def test_unknown_rule_code_is_usage_error(self, capsys):
        rc = main(["--rules", "REP999", str(FIXTURES)])
        assert rc == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        rc = main(["definitely_not_a_real_path_xyz"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules_names_all_four(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004"):
            assert code in out
