"""Output formats and the baseline mechanism: JSON findings, SARIF 2.1.0,
and fingerprint-based suppression of known findings."""

import json
import subprocess
import sys
from pathlib import Path

from tools.replint.engine import Violation
from tools.replint.output import (
    apply_baseline,
    fingerprint,
    load_baseline,
    to_json,
    to_sarif,
    write_baseline,
)
from tools.replint.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def v(path="src/repro/m.py", line=3, code="REP001", message="bad"):
    return Violation(path=path, line=line, col=1, code=code, message=message)


class TestJsonOutput:
    def test_findings_round_trip_through_json(self):
        payload = json.loads(to_json([v(), v(line=9, code="REP004")],
                                     default_rules()))
        assert payload["tool"] == "replint"
        codes = [f["code"] for f in payload["findings"]]
        assert codes == ["REP001", "REP004"]
        assert all("fingerprint" in f for f in payload["findings"])

    def test_empty_run_serializes(self):
        payload = json.loads(to_json([], default_rules()))
        assert payload["findings"] == []


class TestSarifOutput:
    def test_sarif_shape_and_schema(self):
        doc = json.loads(to_sarif([v()], default_rules()))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "replint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "REP001" in rule_ids and "REP013" in rule_ids

    def test_result_points_at_violation(self):
        doc = json.loads(to_sarif([v()], default_rules()))
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "REP001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/m.py"
        assert location["region"]["startLine"] == 3
        assert "replintFingerprint/v1" in result["partialFingerprints"]

    def test_rule_metadata_is_complete(self):
        doc = json.loads(to_sarif([], default_rules()))
        for rule in doc["runs"][0]["tool"]["driver"]["rules"]:
            assert rule["id"].startswith("REP")
            assert rule["shortDescription"]["text"]
            assert rule["help"]["text"]


class TestBaseline:
    def test_round_trip_preserves_fingerprints(self, tmp_path):
        target = tmp_path / "baseline.json"
        violations = [v(), v(line=9, code="REP004"), v(line=12)]
        write_baseline(target, violations)
        counts = load_baseline(target)
        assert counts[fingerprint(v())] == 2  # two REP001 same message
        assert sum(counts.values()) == 3

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_apply_baseline_absorbs_known_and_keeps_new(self, tmp_path):
        target = tmp_path / "baseline.json"
        known = v()
        write_baseline(target, [known])
        fresh, absorbed = apply_baseline(
            [known, v(code="REP005", message="new finding")],
            load_baseline(target),
        )
        assert [f.code for f in fresh] == ["REP005"]
        assert absorbed == 1

    def test_fingerprints_are_line_independent(self, tmp_path):
        # a finding that merely moved lines stays baselined
        target = tmp_path / "baseline.json"
        write_baseline(target, [v(line=3)])
        fresh, absorbed = apply_baseline([v(line=300)], load_baseline(target))
        assert fresh == []
        assert absorbed == 1

    def test_multiplicity_budget_is_respected(self, tmp_path):
        # baseline holds ONE copy; two identical findings -> one is new
        target = tmp_path / "baseline.json"
        write_baseline(target, [v()])
        fresh, absorbed = apply_baseline([v(), v()], load_baseline(target))
        assert len(fresh) == 1
        assert absorbed == 1


class TestCheckedInBaseline:
    def test_repo_baseline_exists_and_is_empty(self):
        # the tree is clean, so the checked-in baseline carries no debt
        payload = json.loads(
            (REPO_ROOT / "tools" / "replint" / "baseline.json").read_text()
        )
        assert payload["findings"] == []

    def test_cli_sarif_output_is_valid_json(self, tmp_path):
        out = tmp_path / "replint.sarif"
        proc = subprocess.run(
            [sys.executable, "-m", "tools.replint", "src",
             "--format", "sarif", "--output", str(out)],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
