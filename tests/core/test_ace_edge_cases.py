"""Edge-case tests for the ACE protocol driver."""

import numpy as np
import pytest

from repro.core.ace import AceConfig, AceProtocol, StepReport
from repro.topology.overlay import Overlay
from repro.topology.physical import PhysicalTopology


def tiny_world(n_hosts=8):
    phys = PhysicalTopology(
        n_hosts, [(i, i + 1) for i in range(n_hosts - 1)], [1.0] * (n_hosts - 1)
    )
    return phys


class TestDegenerateOverlays:
    def test_single_peer(self):
        ov = Overlay(tiny_world(), {0: 0})
        protocol = AceProtocol(ov, rng=np.random.default_rng(0))
        report = protocol.step()
        assert report.peers_optimized == 1
        assert report.replacements == 0
        assert protocol.flooding_neighbors(0) == set()

    def test_two_peers(self):
        ov = Overlay(tiny_world(), {0: 0, 1: 5})
        ov.connect(0, 1)
        protocol = AceProtocol(ov, rng=np.random.default_rng(0))
        protocol.step()
        assert protocol.flooding_neighbors(0) == {1}
        assert protocol.flooding_neighbors(1) == {0}
        assert ov.has_edge(0, 1)

    def test_empty_overlay_step(self):
        ov = Overlay(tiny_world())
        protocol = AceProtocol(ov, rng=np.random.default_rng(0))
        report = protocol.step()
        assert report.peers_optimized == 0

    def test_step_skips_departed_peers(self):
        ov = Overlay(tiny_world(), {0: 0, 1: 3, 2: 6})
        ov.connect(0, 1)
        ov.connect(1, 2)
        protocol = AceProtocol(ov, rng=np.random.default_rng(0))
        report = protocol.step(peers=[0, 1, 2, 99])
        assert report.peers_optimized == 3


class TestStarOverlayBehaviour:
    """On a star (no neighbor-neighbor links) Phase 2 floods everywhere."""

    def test_star_has_no_non_flooding_neighbors(self):
        ov = Overlay(tiny_world(), {0: 3, 1: 0, 2: 1, 3: 6, 4: 7})
        for leaf in (1, 2, 3, 4):
            ov.connect(0, leaf)
        protocol = AceProtocol(ov, rng=np.random.default_rng(0))
        state = protocol.recompute_tree(0)
        assert state.flooding == frozenset({1, 2, 3, 4})
        assert state.non_flooding == frozenset()

    def test_star_step_makes_no_changes(self):
        ov = Overlay(tiny_world(), {0: 3, 1: 0, 2: 1, 3: 6, 4: 7})
        for leaf in (1, 2, 3, 4):
            ov.connect(0, leaf)
        protocol = AceProtocol(ov, rng=np.random.default_rng(0))
        report = protocol.step()
        assert report.replacements == 0
        assert report.keep_both_adds == 0
        assert report.redundant_sheds == 0
        assert sorted(ov.edges()) == [(0, 1), (0, 2), (0, 3), (0, 4)]


class TestNonFloodingAccessor:
    def test_non_flooding_neighbors_live_view(self):
        ov = Overlay(tiny_world(), {0: 0, 1: 2, 2: 4})
        ov.connect(0, 1)
        ov.connect(1, 2)
        ov.connect(0, 2)  # triangle with 0-2 as the long side
        protocol = AceProtocol(
            ov, AceConfig(shed_redundant=False), rng=np.random.default_rng(0)
        )
        protocol.recompute_tree(0)
        assert protocol.non_flooding_neighbors(0) == {2}
        ov.disconnect(0, 2)
        assert protocol.non_flooding_neighbors(0) == set()


class TestShedFloorConfiguration:
    def test_explicit_floor_wins(self):
        ov = Overlay(tiny_world(), {0: 0, 1: 2})
        ov.connect(0, 1)
        protocol = AceProtocol(
            ov, AceConfig(shed_degree_floor=7), rng=np.random.default_rng(0)
        )
        assert protocol._shed_floor == 7

    def test_default_floor_is_average_degree(self):
        ov = Overlay(tiny_world(), {0: 0, 1: 2, 2: 4, 3: 6})
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            ov.connect(u, v)
        protocol = AceProtocol(ov, rng=np.random.default_rng(0))
        assert protocol._shed_floor == 2

    def test_floor_never_below_min_degree(self):
        ov = Overlay(tiny_world(), {0: 0, 1: 2})
        ov.connect(0, 1)
        protocol = AceProtocol(
            ov,
            AceConfig(min_degree=3, shed_degree_floor=1),
            rng=np.random.default_rng(0),
        )
        assert protocol._shed_floor == 3


class TestOverheadAccounting:
    def test_deeper_closures_cost_more_per_step(self):
        hosts = {i: i for i in range(8)}
        ov = Overlay(tiny_world(), hosts)
        for i in range(7):
            ov.connect(i, i + 1)
        ov.connect(0, 2)
        ov.connect(3, 5)
        shallow = AceProtocol(
            ov.copy(), AceConfig(depth=1), rng=np.random.default_rng(1)
        ).step()
        deep = AceProtocol(
            ov.copy(), AceConfig(depth=3), rng=np.random.default_rng(1)
        ).step()
        assert deep.exchange_overhead > shallow.exchange_overhead

    def test_probe_overhead_matches_neighbor_costs(self):
        ov = Overlay(tiny_world(), {0: 0, 1: 2, 2: 4})
        ov.connect(0, 1)
        ov.connect(1, 2)
        protocol = AceProtocol(ov, rng=np.random.default_rng(0))
        report = protocol.step()
        # Each peer probes its direct neighbors once per step, round trip:
        # 0: 2*2, 1: 2*(2+2), 2: 2*2 => 16.
        assert report.probe_overhead == pytest.approx(16.0)
