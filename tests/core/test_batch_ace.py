"""The batched ACE kernel is an optimization, not a treatment.

``repro.core.batch_ace`` replaces the per-peer closure/Phase-1/MST inner
loop of :meth:`AceProtocol.step` with one shared CSR frontier sweep, a flat
cost pass and a segmented MST kernel.  These tests pin the contract from
the inside: identical step reports, identical replacement actions,
identical flat-store rows, identical overlay edges — across depths,
oracles and seeds, static and under churn — plus the toggle plumbing and
the perf counters the kernel is observable through.

Figure-level byte-identity (the experiment blobs) rides in
``tests/experiments/test_reproducibility.py``; the acceptance speedup gate
is ``benchmarks/bench_ace_kernel.py``.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.ace import AceConfig, AceProtocol
from repro.core.batch_ace import (
    batched_ace_enabled,
    extract_closures,
    kernel_active,
    scalar_ace,
    set_batched_ace,
)
from repro.core.closure import neighbor_closure
from repro.core.spanning_tree import prim_mst_heap
from repro.experiments.dynamic_env import DynamicConfig, run_dynamic_experiment
from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.perf import counters


def scenario(engine="array", seed=5, oracle="exact", peers=60, nodes=240):
    return build_scenario(
        ScenarioConfig(
            physical_nodes=nodes,
            peers=peers,
            avg_degree=6.0,
            seed=seed,
            oracle=oracle,
            engine=engine,
        )
    )


def protocol_for(sc, depth=2, seed=5):
    overlay = sc.fresh_overlay()
    overlay.warm_edge_costs()
    return AceProtocol(
        overlay,
        AceConfig(depth=depth),
        rng=np.random.default_rng(seed + 0xACE),
    )


def full_state(protocol, steps=3):
    """Run *steps* ACE steps and snapshot everything the kernel may touch."""
    reports = [dataclasses.asdict(protocol.step()) for _ in range(steps)]
    overlay = protocol.overlay
    return {
        "reports": reports,
        "actions": [dataclasses.asdict(a) for a in protocol.last_actions],
        "version": protocol.state_version,
        "edges": sorted(
            (min(u, v), max(u, v), overlay.cost(u, v)) for u, v in overlay.edges()
        ),
        "flooding": {
            p: sorted(protocol.flooding_neighbors(p)) for p in overlay.peers()
        },
        "non_flooding": {
            p: sorted(protocol.non_flooding_neighbors(p))
            for p in overlay.peers()
        },
    }


class TestKernelEquality:
    """Scalar and batched step loops agree on every observable."""

    @pytest.mark.parametrize("depth", [1, 2, 3])
    @pytest.mark.parametrize("oracle", ["exact", "landmark:8"])
    def test_full_state_matches_across_depth_and_oracle(self, depth, oracle):
        with scalar_ace():
            ref = full_state(protocol_for(scenario(oracle=oracle), depth=depth))
        kern = full_state(protocol_for(scenario(oracle=oracle), depth=depth))
        assert kern == ref

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_full_state_matches_across_seeds(self, seed):
        with scalar_ace():
            ref = full_state(protocol_for(scenario(seed=seed), seed=seed))
        kern = full_state(protocol_for(scenario(seed=seed), seed=seed))
        assert kern == ref

    def test_dynamic_churn_series_matches(self):
        dyn = DynamicConfig(total_queries=120, window=40)
        with scalar_ace():
            ref = run_dynamic_experiment(scenario(), dyn)
        kern = run_dynamic_experiment(scenario(), dyn)
        assert dataclasses.asdict(kern) == dataclasses.asdict(ref)

    def test_object_engine_is_untouched_by_the_toggle(self):
        # The kernel only engages on the array engine; the object-model
        # reference runs the same scalar loop whatever the toggle says.
        counters.reset()
        ref = full_state(protocol_for(scenario(engine="object")))
        assert counters.ace_batched_steps == 0
        kern = full_state(protocol_for(scenario()))
        assert counters.ace_batched_steps == 3
        assert kern == ref


class TestExtractClosures:
    """The batched extractor equals the per-peer reference closure."""

    def test_members_edges_and_trees_match_neighbor_closure(self):
        sc = scenario()
        overlay = sc.fresh_overlay()
        overlay.warm_edge_costs()
        peers = overlay.peers()
        batch = extract_closures(overlay, peers, depth=2)
        assert batch.sources == list(peers)
        for peer in peers:
            i = batch.index[peer]
            ref = neighbor_closure(overlay, peer, 2)
            assert batch.members[i] == sorted(ref.members)
            assert batch.closure_edges[i] == ref.num_edges()
            assert batch.direct[i] == sorted(ref.edges[peer])
            tree = prim_mst_heap(ref.edges, peer)
            assert batch.flooding[i] == sorted(tree.tree_neighbors(peer))

    def test_probe_sum_is_the_sequential_direct_cost_sum(self):
        sc = scenario()
        overlay = sc.fresh_overlay()
        overlay.warm_edge_costs()
        peers = overlay.peers()[:8]
        batch = extract_closures(overlay, peers, depth=2)
        for peer in peers:
            i = batch.index[peer]
            total = 0.0
            for cost in batch.direct_costs[i]:
                total += cost
            assert batch.probe_sum[i] == total

    def test_empty_batch_is_empty(self):
        sc = scenario()
        overlay = sc.fresh_overlay()
        batch = extract_closures(overlay, [], depth=2)
        assert batch.sources == []
        assert batch.index == {}


class TestToggle:
    def test_set_batched_ace_returns_previous_value(self):
        assert batched_ace_enabled()
        assert set_batched_ace(False) is True
        try:
            assert not batched_ace_enabled()
            assert set_batched_ace(True) is False
        finally:
            set_batched_ace(True)

    def test_scalar_ace_restores_on_exit(self):
        assert batched_ace_enabled()
        with scalar_ace():
            assert not batched_ace_enabled()
            with scalar_ace():
                assert not batched_ace_enabled()
            assert not batched_ace_enabled()
        assert batched_ace_enabled()

    def test_kernel_active_tracks_engine_and_toggle(self):
        arr = protocol_for(scenario())
        obj = protocol_for(scenario(engine="object"))
        assert kernel_active(arr)
        assert not kernel_active(obj)
        with scalar_ace():
            assert not kernel_active(arr)


class TestPerfCounters:
    def test_batched_step_counters(self):
        protocol = protocol_for(scenario())
        n = len(protocol.overlay.peers())
        counters.reset()
        protocol.step()
        assert counters.ace_batched_steps == 1
        # Every scheduled peer goes through the batched extractor at least
        # once; peers whose closures were dirtied mid-step are re-extracted
        # by the end-of-step tree rebuild on top of that.
        assert counters.closure_batch_peers >= n
        protocol.step()
        assert counters.ace_batched_steps == 2
        assert counters.closure_batch_peers >= 2 * n

    def test_scalar_loop_leaves_kernel_counters_alone(self):
        protocol = protocol_for(scenario())
        counters.reset()
        with scalar_ace():
            protocol.step()
        assert counters.ace_batched_steps == 0
        assert counters.closure_batch_peers == 0

    def test_tree_rebuilds_reuse_fresh_closures(self):
        # Depth-1 closures on a larger overlay: some peers see no mutation
        # inside their closure after their own round, so their end-of-step
        # tree rebuild must reuse the batch entry rather than re-extract.
        # (Small dense overlays legitimately show zero reuses — almost every
        # closure intersects some mutation — hence the 800-peer scenario.)
        protocol = protocol_for(scenario(peers=800, nodes=2400), depth=1)
        counters.reset()
        protocol.step()
        assert counters.closure_reuses > 0

    def test_refresh_then_recompute_reuses_the_closure(self):
        # The satellite fix for AceProtocol.recompute_tree: back-to-back
        # refresh_peer/recompute_tree on an unmutated overlay must extract
        # the closure once, not twice — the reuse is keyed on
        # (overlay.epoch, depth) and observable through the counter.
        protocol = protocol_for(scenario())
        peer = protocol.overlay.peers()[0]
        counters.reset()
        protocol.refresh_peer(peer)
        assert counters.closure_reuses == 0
        protocol.recompute_tree(peer)
        assert counters.closure_reuses == 1
        # A structural mutation invalidates the cached closure.
        u, v = next(iter(protocol.overlay.edges()))
        protocol.overlay.disconnect(u, v)
        protocol.recompute_tree(peer)
        assert counters.closure_reuses == 1

    def test_churn_counter_rides_the_dynamic_driver(self):
        counters.reset()
        run_dynamic_experiment(
            scenario(), DynamicConfig(total_queries=120, window=40)
        )
        assert counters.ace_batched_steps > 0
        assert counters.churn_batch_mutations > 0
