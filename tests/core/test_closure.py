"""Unit tests for h-neighbor closures."""

import pytest

from repro.core.closure import neighbor_closure
from tests.conftest import make_overlay_from_weighted_edges


@pytest.fixture
def chain_overlay():
    """0-1-2-3-4 logical chain (each link delay 10)."""
    return make_overlay_from_weighted_edges(
        [(0, 1, 10.0), (1, 2, 10.0), (2, 3, 10.0), (3, 4, 10.0)]
    )


@pytest.fixture
def clustered_overlay():
    """Triangle 0-1-2 plus pendant 3 on 2, pendant 4 on 3."""
    return make_overlay_from_weighted_edges(
        [(0, 1, 5.0), (1, 2, 6.0), (0, 2, 4.0), (2, 3, 7.0), (3, 4, 8.0)]
    )


class TestMembership:
    def test_depth_one_members(self, chain_overlay):
        c = neighbor_closure(chain_overlay, 2, 1)
        assert c.members == {1, 2, 3}

    def test_depth_two_members(self, chain_overlay):
        c = neighbor_closure(chain_overlay, 2, 2)
        assert c.members == {0, 1, 2, 3, 4}

    def test_depth_covers_whole_overlay(self, chain_overlay):
        c = neighbor_closure(chain_overlay, 0, 10)
        assert c.members == {0, 1, 2, 3, 4}

    def test_hop_distances(self, chain_overlay):
        c = neighbor_closure(chain_overlay, 0, 3)
        assert c.hop_distance == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_frontier(self, chain_overlay):
        c = neighbor_closure(chain_overlay, 0, 2)
        assert c.frontier() == {2}

    def test_size(self, clustered_overlay):
        assert neighbor_closure(clustered_overlay, 0, 1).size == 3


class TestInducedEdges:
    def test_depth_one_includes_neighbor_links(self, clustered_overlay):
        c = neighbor_closure(clustered_overlay, 0, 1)
        # The triangle edges are all inside the 1-closure of 0.
        assert c.edges[1][2] == pytest.approx(6.0)
        assert c.edges[0][1] == pytest.approx(5.0)
        assert c.edges[0][2] == pytest.approx(4.0)

    def test_excludes_outside_edges(self, clustered_overlay):
        c = neighbor_closure(clustered_overlay, 0, 1)
        assert 3 not in c.members
        assert 3 not in c.edges[2]

    def test_edge_symmetry(self, clustered_overlay):
        c = neighbor_closure(clustered_overlay, 0, 2)
        for u, nbrs in c.edges.items():
            for v, cost in nbrs.items():
                assert c.edges[v][u] == cost

    def test_num_edges(self, clustered_overlay):
        assert neighbor_closure(clustered_overlay, 0, 1).num_edges() == 3
        assert neighbor_closure(clustered_overlay, 0, 2).num_edges() == 4

    def test_costs_are_underlay_shortest_paths(self):
        # Long drawn link 0-2 (20) undercut by 0-1-2 (5 + 5).
        ov = make_overlay_from_weighted_edges(
            [(0, 1, 5.0), (1, 2, 5.0), (0, 2, 20.0)]
        )
        c = neighbor_closure(ov, 0, 1)
        assert c.edges[0][2] == pytest.approx(10.0)


class TestValidation:
    def test_depth_zero_raises(self, chain_overlay):
        with pytest.raises(ValueError, match="depth"):
            neighbor_closure(chain_overlay, 0, 0)

    def test_unknown_peer_raises(self, chain_overlay):
        with pytest.raises(KeyError):
            neighbor_closure(chain_overlay, 99, 1)

    def test_isolated_peer_closure(self, grid_physical):
        from repro.topology.overlay import Overlay

        ov = Overlay(grid_physical, {0: 0})
        c = neighbor_closure(ov, 0, 1)
        assert c.members == {0}
        assert c.num_edges() == 0


class TestSnapshotSemantics:
    def test_closure_not_live(self, chain_overlay):
        c = neighbor_closure(chain_overlay, 2, 1)
        chain_overlay.disconnect(2, 3)
        # The snapshot still remembers the old link.
        assert 3 in c.members
        assert 3 in c.edges[2]
