"""Unit tests for adaptive closure-depth selection."""

import numpy as np
import pytest

from repro.core.adaptive_depth import (
    AdaptiveAceProtocol,
    DepthAdvisor,
    FrequencyEstimator,
)
from repro.metrics.optimization import OptimizationTradeoff
from repro.topology.overlay import small_world_overlay


def tradeoff(depth, saving, overhead):
    return OptimizationTradeoff(
        depth=depth,
        avg_degree=6.0,
        baseline_traffic_per_query=100.0,
        optimized_traffic_per_query=100.0 - saving,
        overhead_per_reconstruction=overhead,
    )


@pytest.fixture
def advisor():
    # rate(h, R) = R * saving / overhead:
    # h=1: R*0.5, h=2: R*0.8, h=3: R*0.6.
    return DepthAdvisor([
        tradeoff(1, saving=25.0, overhead=50.0),
        tradeoff(2, saving=40.0, overhead=50.0),
        tradeoff(3, saving=45.0, overhead=75.0),
    ])


class TestDepthAdvisor:
    def test_requires_measurements(self):
        with pytest.raises(ValueError):
            DepthAdvisor([])

    def test_depths(self, advisor):
        assert advisor.depths == [1, 2, 3]

    def test_best_depth(self, advisor):
        best, rate = advisor.best_depth(2.0)
        assert best == 2
        assert rate == pytest.approx(1.6)

    def test_best_depth_tie_prefers_shallower(self):
        adv = DepthAdvisor([
            tradeoff(1, saving=40.0, overhead=50.0),
            tradeoff(2, saving=40.0, overhead=50.0),
        ])
        best, _rate = adv.best_depth(1.0)
        assert best == 1

    def test_minimal_profitable_depth(self, advisor):
        # rate > 1 needs R*0.5 > 1 at h=1 (R > 2) or R*0.8 > 1 at h=2.
        assert advisor.minimal_profitable_depth(1.0) is None
        assert advisor.minimal_profitable_depth(1.5) == 2
        assert advisor.minimal_profitable_depth(3.0) == 1

    def test_recommend_parks_when_unprofitable(self, advisor):
        assert advisor.recommend(0.5) is None
        assert advisor.recommend(2.0) == 2


class TestFrequencyEstimator:
    def test_default_until_observed(self):
        est = FrequencyEstimator(default_ratio=1.5)
        assert est.frequency_ratio == 1.5
        est.observe_query(0.0)
        assert est.frequency_ratio == 1.5  # still no changes observed

    def test_ratio_tracks_event_rates(self):
        est = FrequencyEstimator(half_life=100.0)
        for t in range(100):
            est.observe_query(float(t), count=4)
            est.observe_change(float(t), count=2)
        assert est.frequency_ratio == pytest.approx(2.0, rel=0.05)

    def test_decay_forgets_old_regime(self):
        est = FrequencyEstimator(half_life=10.0)
        for t in range(50):
            est.observe_query(float(t), count=10)
            est.observe_change(float(t), count=1)
        # Regime change: queries stop, churn continues.
        for t in range(50, 150):
            est.observe_change(float(t), count=1)
        assert est.frequency_ratio < 1.0

    def test_half_life_validation(self):
        with pytest.raises(ValueError):
            FrequencyEstimator(half_life=0.0)

    def test_time_never_goes_backward(self):
        est = FrequencyEstimator()
        est.observe_query(10.0)
        est.observe_change(5.0)  # clock skew: treated as dt = 0
        assert est.frequency_ratio > 0


class TestAdaptiveProtocol:
    @pytest.fixture
    def world(self, ba_physical):
        return small_world_overlay(
            ba_physical, 30, avg_degree=6, rng=np.random.default_rng(19)
        )

    def test_parks_when_unprofitable(self, world, advisor):
        protocol = AdaptiveAceProtocol(
            world, advisor, rng=np.random.default_rng(0)
        )
        protocol.estimator.observe_query(0.0, count=1)
        protocol.estimator.observe_change(0.0, count=10)  # R << 1
        edges_before = sorted(world.edges())
        report = protocol.step()
        assert protocol.parked_steps == 1
        assert report.replacements == 0
        assert sorted(world.edges()) == edges_before
        # Trees are still fresh for routing.
        assert protocol.state_of(world.peers()[0]) is not None

    def test_optimizes_at_recommended_depth(self, world, advisor):
        protocol = AdaptiveAceProtocol(
            world, advisor, rng=np.random.default_rng(0)
        )
        for t in range(20):
            protocol.estimator.observe_query(float(t), count=4)
            protocol.estimator.observe_change(float(t), count=2)
        protocol.step()
        assert protocol.depth_history == [2]
        assert protocol.config.depth == 2
        assert protocol.parked_steps == 0

    def test_depth_follows_regime_change(self, world, advisor):
        protocol = AdaptiveAceProtocol(
            world, advisor, rng=np.random.default_rng(0)
        )
        for t in range(20):
            protocol.estimator.observe_query(float(t), count=2)
            protocol.estimator.observe_change(float(t), count=1)
        protocol.step()  # R ~ 2 -> depth 2
        for t in range(20, 200):
            protocol.estimator.observe_query(float(t), count=4)
            protocol.estimator.observe_change(float(t), count=1)
        protocol.step()  # R ~ 4 -> h=1 rate 2.0, h=2 rate 3.2 -> still 2
        assert protocol.depth_history[0] == 2
        best, _ = advisor.best_depth(protocol.estimator.frequency_ratio)
        assert protocol.depth_history[-1] == best

    def test_scope_preserved_through_adaptation(self, world, advisor):
        from repro.search.flooding import propagate
        from repro.search.tree_routing import ace_strategy

        protocol = AdaptiveAceProtocol(
            world, advisor, rng=np.random.default_rng(0)
        )
        for t in range(20):
            protocol.estimator.observe_query(float(t), count=4)
            protocol.estimator.observe_change(float(t), count=1)
        protocol.step()
        protocol.step()
        prop = propagate(world, world.peers()[0], ace_strategy(protocol), ttl=None)
        assert prop.reached == set(world.peers())
