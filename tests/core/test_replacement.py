"""Unit tests for Phase-3 replacement — the four cases of Figure 4.

Costs are underlay shortest-path delays (a metric), so the Figure-4 cases
are constructed by *placing peers on hosts of a line underlay*: host index
differences are exact pairwise costs.
"""

import numpy as np
import pytest

from repro.core.policies import ClosestPolicy, RandomPolicy
from repro.core.replacement import attempt_replacement
from repro.topology.overlay import Overlay
from repro.topology.physical import PhysicalTopology


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def line_underlay(n=16):
    return PhysicalTopology(
        n, [(i, i + 1) for i in range(n - 1)], [1.0] * (n - 1)
    )


def overlay_on_line(hosts, edges):
    """Peers placed on line hosts; pairwise cost == host distance."""
    ov = Overlay(line_underlay(), dict(enumerate(hosts)))
    for u, v in edges:
        ov.connect(u, v)
    return ov


class TestFigure4bReplace:
    def test_closer_candidate_replaces(self, rng):
        # S=0@0, C=1@10, H=2@1: d(S,H)=1 < d(S,C)=10.
        ov = overlay_on_line([0, 10, 1], [(0, 1), (1, 2)])
        action = attempt_replacement(ov, 0, 1, RandomPolicy(), rng)
        assert action.kind == "replace"
        assert action.candidate == 2
        assert ov.has_edge(0, 2)
        assert not ov.has_edge(0, 1)

    def test_connectivity_preserved(self, rng):
        ov = overlay_on_line([0, 10, 1], [(0, 1), (1, 2)])
        attempt_replacement(ov, 0, 1, RandomPolicy(), rng)
        assert ov.is_connected()

    def test_degree_neutral_for_source(self, rng):
        ov = overlay_on_line([0, 10, 1], [(0, 1), (1, 2)])
        before = ov.degree(0)
        action = attempt_replacement(ov, 0, 1, RandomPolicy(), rng)
        assert action.kind == "replace"
        assert ov.degree(0) == before

    def test_probe_cost_round_trip(self, rng):
        ov = overlay_on_line([0, 10, 1], [(0, 1), (1, 2)])
        action = attempt_replacement(ov, 0, 1, RandomPolicy(), rng)
        assert action.probes == 1
        assert action.probe_cost == pytest.approx(2 * 1.0)


class TestFigure4cKeepBoth:
    def test_adds_candidate_keeps_target(self, rng):
        # H=2@0, S=0@2, C=1@3: d(S,C)=1 <= d(S,H)=2 < d(C,H)=3.
        ov = overlay_on_line([2, 3, 0], [(0, 1), (1, 2)])
        action = attempt_replacement(ov, 0, 1, RandomPolicy(), rng)
        assert action.kind == "keep_both"
        assert action.candidate == 2
        assert ov.has_edge(0, 1)
        assert ov.has_edge(0, 2)

    def test_respects_max_degree(self, rng):
        ov = overlay_on_line([2, 3, 0], [(0, 1), (1, 2)])
        action = attempt_replacement(
            ov, 0, 1, RandomPolicy(), rng, max_degree=1
        )
        assert action.kind == "none"
        assert not ov.has_edge(0, 2)

    def test_disabled_by_allow_keep_both(self, rng):
        ov = overlay_on_line([2, 3, 0], [(0, 1), (1, 2)])
        action = attempt_replacement(
            ov, 0, 1, RandomPolicy(), rng, allow_keep_both=False
        )
        assert action.kind == "none"
        assert not ov.has_edge(0, 2)


class TestFigure4dNoChange:
    def test_far_candidate_ignored(self, rng):
        # S=0@0, C=1@5, H=2@9: d(S,H)=9 >= d(S,C)=5, d(S,H)=9 >= d(C,H)=4.
        ov = overlay_on_line([0, 5, 9], [(0, 1), (1, 2)])
        action = attempt_replacement(ov, 0, 1, RandomPolicy(), rng)
        assert action.kind == "none"
        assert ov.has_edge(0, 1)
        assert not ov.has_edge(0, 2)

    def test_probes_are_charged_even_on_none(self, rng):
        ov = overlay_on_line([0, 5, 9], [(0, 1), (1, 2)])
        action = attempt_replacement(ov, 0, 1, RandomPolicy(), rng)
        assert action.probes == 1
        assert action.probe_cost == pytest.approx(2 * 9.0)


class TestGuards:
    def test_no_edge_to_target_is_noop(self, rng):
        ov = overlay_on_line([0, 10, 1], [(1, 2)])
        action = attempt_replacement(ov, 0, 1, RandomPolicy(), rng)
        assert action.kind == "none"
        assert action.probes == 0

    def test_no_candidates_is_noop(self, rng):
        ov = overlay_on_line([0, 10], [(0, 1)])
        action = attempt_replacement(ov, 0, 1, RandomPolicy(), rng)
        assert action.kind == "none"
        assert action.probes == 0

    def test_target_keeps_candidate_link_after_cut(self, rng):
        ov = overlay_on_line([0, 10, 1], [(0, 1), (1, 2)])
        action = attempt_replacement(
            ov, 0, 1, RandomPolicy(), rng, min_degree=1
        )
        assert action.kind == "replace"
        assert ov.has_edge(1, 2)  # C keeps H: connectivity via S-H-C

    def test_probe_budget_respected(self, rng):
        # Target 1 has three unattractive neighbors; budget 2 probes.
        ov = overlay_on_line(
            [0, 2, 9, 10, 11], [(0, 1), (1, 2), (1, 3), (1, 4)]
        )
        action = attempt_replacement(
            ov, 0, 1, RandomPolicy(), rng, max_probes=2
        )
        assert action.kind == "none"
        assert action.probes <= 2

    def test_candidate_already_connected_excluded(self, rng):
        ov = overlay_on_line([0, 10, 1], [(0, 1), (1, 2), (0, 2)])
        # H=2 is already S's neighbor, so there is nothing to probe.
        action = attempt_replacement(ov, 0, 1, RandomPolicy(), rng)
        assert action.kind == "none"
        assert action.probes == 0


class TestClosestPolicyAccounting:
    def test_full_pool_charged_best_candidate_chosen(self, rng):
        # Candidates at hosts 1, 3, 4 -> costs 1, 3, 4 from S@0.
        ov = overlay_on_line(
            [0, 10, 1, 3, 4], [(0, 1), (1, 2), (1, 3), (1, 4)]
        )
        action = attempt_replacement(ov, 0, 1, ClosestPolicy(), rng)
        assert action.probes == 3
        assert action.probe_cost == pytest.approx(2 * (1 + 3 + 4))
        assert action.kind == "replace"
        assert action.candidate == 2  # the closest (cost 1)
