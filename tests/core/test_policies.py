"""Unit tests for Phase-3 candidate policies."""

import numpy as np
import pytest

from repro.core.policies import (
    ClosestPolicy,
    NaivePolicy,
    RandomPolicy,
    make_policy,
)
from tests.conftest import make_overlay_from_weighted_edges


@pytest.fixture
def overlay():
    """Source 0 with neighbors 1 (far) and 2 (near); 1 has neighbors 3, 4, 5."""
    return make_overlay_from_weighted_edges(
        [
            (0, 1, 50.0),
            (0, 2, 5.0),
            (1, 3, 4.0),
            (1, 4, 6.0),
            (1, 5, 8.0),
            (2, 5, 9.0),
        ]
    )


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestMakePolicy:
    def test_by_name(self):
        assert isinstance(make_policy("random"), RandomPolicy)
        assert isinstance(make_policy("closest"), ClosestPolicy)
        assert isinstance(make_policy("naive"), NaivePolicy)

    def test_passthrough_instance(self):
        policy = RandomPolicy()
        assert make_policy(policy) is policy

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("bogus")


class TestTargets:
    def test_default_most_expensive_first(self, overlay, rng):
        policy = RandomPolicy()
        targets = policy.targets(overlay, 0, [1, 2], rng)
        assert targets == [1, 2]  # cost(0,1)=50 > cost(0,2)=5

    def test_naive_picks_single_worst(self, overlay, rng):
        policy = NaivePolicy()
        assert policy.targets(overlay, 0, [1, 2], rng) == [1]

    def test_naive_empty(self, overlay, rng):
        assert NaivePolicy().targets(overlay, 0, [], rng) == []


class TestEligibility:
    def test_excludes_source_and_existing_neighbors(self, overlay, rng):
        policy = RandomPolicy()
        # Candidates for target 1 are 1's neighbors minus {0} and 0's
        # neighbors: {3, 4, 5} (0 itself excluded automatically).
        pool = policy._eligible(overlay, 0, 1)
        assert pool == [3, 4, 5]

    def test_excludes_current_neighbors_of_source(self, overlay, rng):
        overlay.connect(0, 3)
        pool = RandomPolicy()._eligible(overlay, 0, 1)
        assert pool == [4, 5]


class TestRandomPolicy:
    def test_respects_limit(self, overlay, rng):
        cands = RandomPolicy().candidates(overlay, 0, 1, rng, limit=2)
        assert len(cands) == 2
        assert set(cands) <= {3, 4, 5}

    def test_limit_larger_than_pool(self, overlay, rng):
        cands = RandomPolicy().candidates(overlay, 0, 1, rng, limit=10)
        assert sorted(cands) == [3, 4, 5]

    def test_no_candidates(self, overlay, rng):
        # Target 2's only other neighbor is 5; once 0 connects to it the
        # pool is empty.
        overlay.connect(0, 5)
        assert RandomPolicy().candidates(overlay, 0, 2, rng, limit=3) == []

    def test_randomized_but_seed_deterministic(self, overlay):
        a = RandomPolicy().candidates(
            overlay, 0, 1, np.random.default_rng(5), limit=1
        )
        b = RandomPolicy().candidates(
            overlay, 0, 1, np.random.default_rng(5), limit=1
        )
        assert a == b


class TestClosestPolicy:
    def test_orders_by_cost(self, overlay, rng):
        cands = ClosestPolicy().candidates(overlay, 0, 1, rng, limit=1)
        costs = [overlay.cost(0, c) for c in cands]
        assert costs == sorted(costs)
        assert set(cands) == {3, 4, 5}

    def test_probes_charged_is_whole_pool(self, overlay, rng):
        assert ClosestPolicy().probes_charged(overlay, 0, 1) == [3, 4, 5]


class TestNaivePolicy:
    def test_candidates_anywhere(self, overlay, rng):
        cands = NaivePolicy().candidates(overlay, 0, 1, rng, limit=10)
        # Anyone except 0 and its neighbors {1, 2}.
        assert set(cands) == {3, 4, 5}

    def test_limit(self, overlay, rng):
        assert len(NaivePolicy().candidates(overlay, 0, 1, rng, limit=2)) == 2

    def test_empty_pool(self, grid_physical, rng):
        from repro.topology.overlay import Overlay

        ov = Overlay(grid_physical, {0: 0, 1: 1})
        ov.connect(0, 1)
        assert NaivePolicy().candidates(ov, 0, 1, rng, limit=3) == []
