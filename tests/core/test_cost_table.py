"""Unit tests for neighbor cost tables and Phase-1 overhead accounting."""

import pytest

from repro.core.closure import neighbor_closure
from repro.core.cost_table import (
    NeighborCostTable,
    build_cost_table,
    exchange_overhead,
    probe_overhead,
    run_phase1,
)
from tests.conftest import make_overlay_from_weighted_edges


@pytest.fixture
def overlay():
    """Triangle 0-1-2 with a tail 2-3-4."""
    return make_overlay_from_weighted_edges(
        [(0, 1, 5.0), (1, 2, 6.0), (0, 2, 4.0), (2, 3, 7.0), (3, 4, 8.0)]
    )


class TestBuildCostTable:
    def test_entries_match_neighbors(self, overlay):
        table = build_cost_table(overlay, 2)
        assert set(table.costs) == {0, 1, 3}
        assert table.owner == 2
        assert table.size == 3

    def test_costs_are_link_costs(self, overlay):
        table = build_cost_table(overlay, 0)
        assert table.cost_to(1) == pytest.approx(5.0)
        assert table.cost_to(2) == pytest.approx(4.0)

    def test_missing_neighbor_raises(self, overlay):
        table = build_cost_table(overlay, 0)
        with pytest.raises(KeyError):
            table.cost_to(4)

    def test_isolated_peer_empty_table(self, grid_physical):
        from repro.topology.overlay import Overlay

        ov = Overlay(grid_physical, {0: 0})
        table = build_cost_table(ov, 0)
        assert table.size == 0


class TestProbeOverhead:
    def test_round_trip_charging(self):
        table = NeighborCostTable(owner=0, costs={1: 5.0, 2: 4.0})
        assert probe_overhead(table) == pytest.approx(2 * 9.0)
        assert probe_overhead(table, round_trip_factor=3.0) == pytest.approx(27.0)

    def test_empty_table_zero(self):
        assert probe_overhead(NeighborCostTable(owner=0, costs={})) == 0.0


class TestExchangeOverhead:
    def test_depth_one_formula(self, overlay):
        closure = neighbor_closure(overlay, 0, 1)
        tables = {m: build_cost_table(overlay, m) for m in closure.members}
        # One aggregated message per incident link, sized by closure edges.
        entries = closure.num_edges()
        expected = (1.0 + 0.02 * entries) * (5.0 + 4.0)
        assert exchange_overhead(closure, tables) == pytest.approx(expected)

    def test_grows_with_depth(self, overlay):
        t = {m: build_cost_table(overlay, m) for m in overlay.peers()}
        shallow = exchange_overhead(neighbor_closure(overlay, 0, 1), t)
        deep = exchange_overhead(neighbor_closure(overlay, 0, 3), t)
        assert deep > shallow

    def test_entry_factor_scales(self, overlay):
        closure = neighbor_closure(overlay, 0, 2)
        tables = {m: build_cost_table(overlay, m) for m in closure.members}
        cheap = exchange_overhead(closure, tables, entry_cost_factor=0.01)
        costly = exchange_overhead(closure, tables, entry_cost_factor=1.0)
        assert costly > cheap

    def test_isolated_source_zero(self, grid_physical):
        from repro.topology.overlay import Overlay

        ov = Overlay(grid_physical, {0: 0})
        closure = neighbor_closure(ov, 0, 1)
        assert exchange_overhead(closure, {}) == 0.0


class TestRunPhase1:
    def test_tables_for_all_members(self, overlay):
        closure = neighbor_closure(overlay, 0, 2)
        report = run_phase1(overlay, closure)
        assert set(report.tables) == closure.members

    def test_overhead_components(self, overlay):
        closure = neighbor_closure(overlay, 0, 1)
        report = run_phase1(overlay, closure)
        assert report.probe_cost == pytest.approx(2 * 9.0)
        assert report.exchange_cost > 0
        assert report.total_overhead == pytest.approx(
            report.probe_cost + report.exchange_cost
        )

    def test_source_recorded(self, overlay):
        closure = neighbor_closure(overlay, 2, 1)
        assert run_phase1(overlay, closure).source == 2

    def test_deeper_closure_more_overhead(self, overlay):
        shallow = run_phase1(overlay, neighbor_closure(overlay, 0, 1))
        deep = run_phase1(overlay, neighbor_closure(overlay, 0, 3))
        assert deep.total_overhead > shallow.total_overhead
