"""Tests replaying the paper's worked examples (Figures 3, 5-6, Tables 1-2)."""

import pytest

from repro.experiments.paper_example import (
    PEER_NAMES,
    build_example_overlay,
    run_walkthrough,
)


@pytest.fixture(scope="module")
def walkthroughs():
    return {
        "blind": run_walkthrough(None),
        "h1": run_walkthrough(1),
        "h2": run_walkthrough(2),
    }


class TestExampleOverlay:
    def test_six_peers(self):
        ov = build_example_overlay()
        assert ov.num_peers == 6
        assert ov.is_connected()

    def test_mismatched_link_costs_less_than_drawn(self):
        ov = build_example_overlay()
        # Drawn A-B delay is 10 but the underlay routes via C for 6.
        assert ov.cost(0, 1) == pytest.approx(6.0)


class TestScopeRetention:
    def test_all_schemes_reach_all_peers(self, walkthroughs):
        for w in walkthroughs.values():
            assert w.reached == tuple(sorted(PEER_NAMES))


class TestTrafficRelations:
    """The Section 3.4 headline: traffic and duplicates fall with depth."""

    def test_costs_strictly_decrease(self, walkthroughs):
        assert (
            walkthroughs["h2"].total_cost
            < walkthroughs["h1"].total_cost
            < walkthroughs["blind"].total_cost
        )

    def test_duplicates_decrease(self, walkthroughs):
        blind = walkthroughs["blind"].duplicate_messages
        h1 = walkthroughs["h1"].duplicate_messages
        h2 = walkthroughs["h2"].duplicate_messages
        assert blind > h1 > h2 == 0

    def test_h2_has_no_redundant_messages(self, walkthroughs):
        # "No path is traversed twice on the tree built in 2-neighbor
        # closure": 5 messages reach the 5 other peers.
        w = walkthroughs["h2"]
        assert w.messages == len(PEER_NAMES) - 1

    def test_exact_measured_values(self, walkthroughs):
        """Pin the measured numbers so regressions are loud.

        (The scanned paper's own table values are not recoverable; these are
        the values of our structurally equivalent instance.)
        """
        assert walkthroughs["blind"].total_cost == pytest.approx(59.0)
        assert walkthroughs["h1"].total_cost == pytest.approx(31.0)
        assert walkthroughs["h2"].total_cost == pytest.approx(17.0)


class TestWalkthroughDetails:
    def test_query_paths_cover_all_peers(self, walkthroughs):
        for w in walkthroughs.values():
            receivers = {to for _frm, to in w.query_paths}
            assert receivers == set(PEER_NAMES) - {w.source}

    def test_rows_match_costs(self, walkthroughs):
        ov = build_example_overlay()
        for frm, to, cost in walkthroughs["h2"].rows():
            u = PEER_NAMES.index(frm)
            v = PEER_NAMES.index(to)
            assert cost == pytest.approx(ov.cost(u, v))

    def test_trees_recorded_for_each_peer(self, walkthroughs):
        for name in PEER_NAMES:
            assert name in walkthroughs["h1"].trees

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="unknown peer"):
            run_walkthrough(1, source="Z")

    def test_blind_trees_are_full_neighbor_sets(self, walkthroughs):
        ov = build_example_overlay()
        for i, name in enumerate(PEER_NAMES):
            expected = tuple(sorted(PEER_NAMES[n] for n in ov.neighbors(i)))
            assert walkthroughs["blind"].trees[name] == expected
