"""Unit tests for the ACE protocol driver."""

import numpy as np
import pytest

from repro.core.ace import AceConfig, AceProtocol
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy
from repro.topology.overlay import Overlay, small_world_overlay
from repro.topology.physical import PhysicalTopology


def line_underlay(n=32):
    return PhysicalTopology(
        n, [(i, i + 1) for i in range(n - 1)], [1.0] * (n - 1)
    )


def overlay_on_line(hosts, edges):
    ov = Overlay(line_underlay(), dict(enumerate(hosts)))
    for u, v in edges:
        ov.connect(u, v)
    return ov


@pytest.fixture
def clustered():
    """Triangle 0-1-2 (costs 2, 3, 5) plus pendant 3.

    Peer 0@0, 1@2, 2@5, 3@7 on a line underlay.
    """
    return overlay_on_line([0, 2, 5, 7], [(0, 1), (1, 2), (0, 2), (2, 3)])


class TestConfigValidation:
    def test_depth_positive(self):
        with pytest.raises(ValueError):
            AceConfig(depth=0)

    def test_probe_budget_positive(self):
        with pytest.raises(ValueError):
            AceConfig(max_probes_per_target=0)

    def test_defaults_sane(self):
        cfg = AceConfig()
        assert cfg.depth == 1
        assert cfg.allow_keep_both
        assert cfg.shed_redundant


class TestPhase2Classification:
    def test_flooding_vs_non_flooding(self, clustered):
        protocol = AceProtocol(
            clustered, AceConfig(shed_redundant=False), rng=np.random.default_rng(0)
        )
        state = protocol.recompute_tree(0)
        # MST of triangle {0,1,2} keeps 0-1 (2) and 1-2 (3), drops 0-2 (5).
        assert state.flooding == frozenset({1})
        assert state.non_flooding == frozenset({2})

    def test_all_neighbors_flood_before_phase2(self, clustered):
        protocol = AceProtocol(clustered, rng=np.random.default_rng(0))
        assert protocol.flooding_neighbors(0) == {1, 2}

    def test_tree_spans_closure(self, clustered):
        protocol = AceProtocol(clustered, rng=np.random.default_rng(0))
        state = protocol.recompute_tree(2)
        assert state.tree.nodes() == {0, 1, 2, 3}
        assert state.closure_size == 4

    def test_known_neighbors_recorded(self, clustered):
        protocol = AceProtocol(clustered, rng=np.random.default_rng(0))
        state = protocol.recompute_tree(0)
        assert state.known_neighbors == frozenset({1, 2})


class TestStaleStateHandling:
    def test_new_link_is_flooded_to(self, clustered):
        protocol = AceProtocol(
            clustered, AceConfig(shed_redundant=False), rng=np.random.default_rng(0)
        )
        protocol.recompute_tree(0)
        clustered.connect(0, 3)
        assert 3 in protocol.flooding_neighbors(0)

    def test_lost_flooding_neighbor_falls_back_to_all(self, clustered):
        protocol = AceProtocol(
            clustered, AceConfig(shed_redundant=False), rng=np.random.default_rng(0)
        )
        protocol.recompute_tree(0)
        clustered.disconnect(0, 1)  # 1 was the flooding neighbor of 0
        assert protocol.flooding_neighbors(0) == {2}

    def test_lost_non_flooding_neighbor_keeps_tree(self, clustered):
        protocol = AceProtocol(
            clustered, AceConfig(shed_redundant=False), rng=np.random.default_rng(0)
        )
        protocol.recompute_tree(0)
        clustered.disconnect(0, 2)  # non-flooding for 0
        assert protocol.flooding_neighbors(0) == {1}

    def test_churn_hooks_drop_state(self, clustered):
        protocol = AceProtocol(clustered, rng=np.random.default_rng(0))
        protocol.recompute_tree(0)
        protocol.handle_peer_left(0)
        assert protocol.state_of(0) is None
        protocol.recompute_tree(0)
        protocol.handle_peer_joined(0)
        assert protocol.state_of(0) is None


class TestStep:
    def test_step_reports_accumulate(self, small_overlay):
        protocol = AceProtocol(small_overlay, rng=np.random.default_rng(1))
        report = protocol.step()
        assert report.peers_optimized == small_overlay.num_peers
        assert report.probe_overhead > 0
        assert report.exchange_overhead > 0
        assert report.total_overhead == pytest.approx(
            report.probe_overhead
            + report.exchange_overhead
            + report.replacement_probe_overhead
        )

    def test_steps_run_counter(self, small_overlay):
        protocol = AceProtocol(small_overlay, rng=np.random.default_rng(1))
        protocol.run(3)
        assert protocol.steps_run == 3

    def test_all_peers_have_state_after_step(self, small_overlay):
        protocol = AceProtocol(small_overlay, rng=np.random.default_rng(1))
        protocol.step()
        assert all(
            protocol.state_of(p) is not None for p in small_overlay.peers()
        )

    def test_step_keeps_overlay_connected(self, small_overlay):
        protocol = AceProtocol(small_overlay, rng=np.random.default_rng(1))
        protocol.run(4)
        assert small_overlay.is_connected()

    def test_step_subset_of_peers(self, small_overlay):
        protocol = AceProtocol(small_overlay, rng=np.random.default_rng(1))
        report = protocol.step(peers=small_overlay.peers()[:5])
        assert report.peers_optimized == 5

    def test_deterministic_given_seed(self, ba_physical):
        results = []
        for _ in range(2):
            ov = small_world_overlay(
                ba_physical, 30, avg_degree=6, rng=np.random.default_rng(7)
            )
            protocol = AceProtocol(ov, rng=np.random.default_rng(42))
            protocol.run(2)
            results.append(sorted(ov.edges()))
        assert results[0] == results[1]


class TestScopePreservation:
    """The paper's core claim: ACE never shrinks the search scope."""

    @pytest.mark.parametrize("depth", [1, 2])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tree_routing_reaches_all_peers(self, ba_physical, depth, seed):
        ov = small_world_overlay(
            ba_physical, 35, avg_degree=6, rng=np.random.default_rng(seed)
        )
        protocol = AceProtocol(
            ov, AceConfig(depth=depth), rng=np.random.default_rng(seed)
        )
        protocol.run(3)
        for source in ov.peers()[:6]:
            prop = propagate(ov, source, ace_strategy(protocol), ttl=None)
            assert prop.reached == set(ov.peers())


class TestTrafficReduction:
    def test_ace_traffic_below_blind_flooding(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 40, avg_degree=8, rng=np.random.default_rng(3)
        )
        baseline = sum(
            propagate(ov, s, blind_flooding_strategy(ov), ttl=None).traffic_cost
            for s in ov.peers()[:8]
        )
        protocol = AceProtocol(ov, rng=np.random.default_rng(3))
        protocol.run(6)
        optimized = sum(
            propagate(ov, s, ace_strategy(protocol), ttl=None).traffic_cost
            for s in ov.peers()[:8]
        )
        assert optimized < baseline


class TestShedding:
    def test_sheds_longest_triangle_edge(self, clustered):
        protocol = AceProtocol(
            clustered,
            AceConfig(shed_degree_floor=1, min_degree=1),
            rng=np.random.default_rng(0),
        )
        protocol.recompute_tree(0)
        shed = protocol.shed_redundant_links(0, [2])
        assert shed == 1
        assert not clustered.has_edge(0, 2)
        assert clustered.is_connected()

    def test_respects_degree_floor(self, clustered):
        protocol = AceProtocol(
            clustered,
            AceConfig(shed_degree_floor=2),
            rng=np.random.default_rng(0),
        )
        protocol.recompute_tree(0)
        shed = protocol.shed_redundant_links(0, [2])
        assert shed == 0  # peer 0 has degree 2 == floor
        assert clustered.has_edge(0, 2)

    def test_does_not_cut_non_triangle_links(self):
        ov = overlay_on_line([0, 2, 9], [(0, 1), (1, 2)])
        protocol = AceProtocol(
            ov, AceConfig(shed_degree_floor=1, min_degree=1),
            rng=np.random.default_rng(0),
        )
        assert protocol.shed_redundant_links(0, [1]) == 0

    def test_cap_per_step(self):
        # Two triangles sharing peer 0, both with 0-incident longest edges.
        ov = overlay_on_line(
            [0, 1, 9, 2, 12],
            [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)],
        )
        protocol = AceProtocol(
            ov,
            AceConfig(shed_degree_floor=1, min_degree=1, max_sheds_per_step=1),
            rng=np.random.default_rng(0),
        )
        assert protocol.shed_redundant_links(0, [2, 4]) == 1


class TestDegreeStability:
    def test_average_degree_stays_near_initial(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 40, avg_degree=6, rng=np.random.default_rng(5)
        )
        initial = ov.average_degree()
        protocol = AceProtocol(ov, rng=np.random.default_rng(5))
        protocol.run(8)
        assert abs(ov.average_degree() - initial) < 2.5
