"""Unit tests for Prim spanning trees (ACE Phase 2)."""

import numpy as np
import pytest

from repro.core.spanning_tree import SpanningTree, prim_mst, prim_mst_heap


def graph_from_edges(edges):
    """Symmetric adjacency {u: {v: cost}} from (u, v, cost) triples."""
    nodes = set()
    for u, v, _ in edges:
        nodes.add(u)
        nodes.add(v)
    g = {n: {} for n in nodes}
    for u, v, c in edges:
        g[u][v] = c
        g[v][u] = c
    return g


SIMPLE = graph_from_edges(
    [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0), (2, 3, 1.0), (1, 3, 4.0)]
)


@pytest.mark.parametrize("algo", [prim_mst, prim_mst_heap], ids=["array", "heap"])
class TestPrimVariants:
    def test_spans_all_nodes(self, algo):
        tree = algo(SIMPLE, 0)
        assert tree.nodes() == {0, 1, 2, 3}

    def test_minimum_weight(self, algo):
        tree = algo(SIMPLE, 0)
        # MST: 0-1 (1), 1-2 (2), 2-3 (1) = 4.
        assert tree.total_cost == pytest.approx(4.0)
        assert tree.edges() == {(0, 1), (1, 2), (2, 3)}

    def test_root_is_own_parent(self, algo):
        tree = algo(SIMPLE, 2)
        assert tree.parent[2] == 2
        assert tree.root == 2

    def test_same_mst_any_root(self, algo):
        costs = {algo(SIMPLE, r).total_cost for r in SIMPLE}
        assert costs == {4.0}

    def test_single_node(self, algo):
        tree = algo({7: {}}, 7)
        assert tree.nodes() == {7}
        assert tree.total_cost == 0.0
        assert tree.tree_neighbors(7) == frozenset()

    def test_two_nodes(self, algo):
        tree = algo(graph_from_edges([(0, 1, 3.0)]), 0)
        assert tree.edges() == {(0, 1)}
        assert tree.total_cost == 3.0

    def test_disconnected_raises(self, algo):
        g = graph_from_edges([(0, 1, 1.0)])
        g[2] = {}
        with pytest.raises(ValueError, match="not connected"):
            algo(g, 0)

    def test_missing_root_raises(self, algo):
        with pytest.raises(ValueError, match="root"):
            algo(SIMPLE, 99)

    def test_negative_cost_raises(self, algo):
        with pytest.raises(ValueError, match="negative"):
            algo(graph_from_edges([(0, 1, -1.0)]), 0)

    def test_dangling_edge_raises(self, algo):
        g = {0: {1: 1.0}}
        with pytest.raises(ValueError, match="leaves"):
            algo(g, 0)

    def test_matches_networkx_weight(self, algo):
        import networkx as nx

        rng = np.random.default_rng(7)
        g_nx = nx.gnm_random_graph(15, 40, seed=3)
        # Ensure connectivity.
        nodes = list(g_nx.nodes())
        for a, b in zip(nodes, nodes[1:]):
            g_nx.add_edge(a, b)
        for u, v in g_nx.edges():
            g_nx[u][v]["weight"] = float(rng.uniform(1, 100))
        g = graph_from_edges(
            [(u, v, g_nx[u][v]["weight"]) for u, v in g_nx.edges()]
        )
        expected = sum(
            d["weight"] for _u, _v, d in nx.minimum_spanning_edges(g_nx, data=True)
        )
        assert algo(g, 0).total_cost == pytest.approx(expected)


class TestVariantEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_array_and_heap_agree_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        edges = []
        for i in range(1, n):
            edges.append((i, int(rng.integers(i)), float(rng.uniform(1, 50))))
        for _ in range(20):
            u, v = rng.integers(n, size=2)
            if u != v:
                edges.append((int(u), int(v), float(rng.uniform(1, 50))))
        g = graph_from_edges(edges)
        for root in (0, n - 1):
            a = prim_mst(g, root)
            b = prim_mst_heap(g, root)
            assert a.parent == b.parent
            assert a.total_cost == pytest.approx(b.total_cost)


class TestSpanningTreeApi:
    def test_children_orientation(self):
        tree = prim_mst(SIMPLE, 0)
        assert tree.children(0) == {1}
        assert tree.children(1) == {2}
        assert tree.children(3) == set()

    def test_depth_of(self):
        tree = prim_mst(SIMPLE, 0)
        assert tree.depth_of(0) == 0
        assert tree.depth_of(3) == 3

    def test_tree_neighbors_absent_node(self):
        tree = prim_mst(SIMPLE, 0)
        assert tree.tree_neighbors(42) == frozenset()

    def test_depth_of_detects_cycle(self):
        bad = SpanningTree(
            root=0,
            parent={0: 0, 1: 2, 2: 1},
            adjacency={
                0: frozenset(),
                1: frozenset({2}),
                2: frozenset({1}),
            },
            total_cost=0.0,
        )
        with pytest.raises(RuntimeError, match="cycle"):
            bad.depth_of(1)
