"""Unit tests for expanding-ring (iterative deepening) search."""

import pytest

from repro.search.expanding_ring import (
    DEFAULT_TTL_SCHEDULE,
    expanding_ring_query,
)
from repro.search.flooding import blind_flooding_strategy, propagate, run_query
from tests.conftest import make_overlay_from_weighted_edges


@pytest.fixture
def chain():
    return make_overlay_from_weighted_edges(
        [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]
    )


class TestValidation:
    def test_empty_schedule(self, chain):
        with pytest.raises(ValueError):
            expanding_ring_query(
                chain, 0, blind_flooding_strategy(chain), [], ttl_schedule=()
            )

    def test_non_increasing_schedule(self, chain):
        with pytest.raises(ValueError):
            expanding_ring_query(
                chain, 0, blind_flooding_strategy(chain), [],
                ttl_schedule=(2, 1),
            )

    def test_default_schedule_shape(self):
        assert DEFAULT_TTL_SCHEDULE == (1, 2, 4, 7)


class TestRings:
    def test_nearby_object_found_in_first_ring(self, chain):
        result = expanding_ring_query(
            chain, 0, blind_flooding_strategy(chain), [1]
        )
        assert result.rounds == 1
        assert result.ttl_used == 1
        assert result.first_response_time == pytest.approx(2.0)

    def test_far_object_needs_deeper_ring(self, chain):
        result = expanding_ring_query(
            chain, 0, blind_flooding_strategy(chain), [4]
        )
        assert result.rounds == 3  # TTLs 1, 2 fail; 4 succeeds
        assert result.ttl_used == 4
        assert result.holders_reached == (4,)

    def test_failed_rings_add_waiting_time(self, chain):
        result = expanding_ring_query(
            chain, 0, blind_flooding_strategy(chain), [4], round_trip_wait=5.0
        )
        # Two failed rings (diameters 1 and 2) plus the hit at distance 4:
        # elapsed = (2*1 + 5) + (2*2 + 5) + 2*4.
        assert result.first_response_time == pytest.approx(7 + 9 + 8)

    def test_unfound_object(self, chain):
        result = expanding_ring_query(
            chain, 0, blind_flooding_strategy(chain), [],
            ttl_schedule=(1, 2),
        )
        assert not result.success
        assert result.ttl_used is None
        assert result.rounds == 2

    def test_traffic_accumulates_across_rings(self, chain):
        strategy = blind_flooding_strategy(chain)
        result = expanding_ring_query(chain, 0, strategy, [4])
        ring_costs = [
            propagate(chain, 0, strategy, ttl=t).traffic_cost for t in (1, 2, 4)
        ]
        assert result.traffic_cost == pytest.approx(sum(ring_costs))


class TestTradeoffs:
    def test_cheaper_than_full_flood_for_nearby_objects(self, chain):
        strategy = blind_flooding_strategy(chain)
        ring = expanding_ring_query(chain, 0, strategy, [1])
        flood = run_query(chain, 0, strategy, [1], ttl=None)
        assert ring.traffic_cost < flood.traffic_cost

    def test_costlier_than_full_flood_for_rare_objects(self, chain):
        strategy = blind_flooding_strategy(chain)
        ring = expanding_ring_query(chain, 0, strategy, [4])
        flood = run_query(chain, 0, strategy, [4], ttl=None)
        assert ring.traffic_cost > flood.traffic_cost
