"""Unit tests for k-walker random-walk search."""

import numpy as np
import pytest

from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.random_walk import random_walk_query
from repro.topology.overlay import small_world_overlay
from tests.conftest import make_overlay_from_weighted_edges


@pytest.fixture
def chain():
    return make_overlay_from_weighted_edges(
        [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]
    )


class TestValidation:
    def test_unknown_source(self, chain):
        with pytest.raises(KeyError):
            random_walk_query(chain, 99, [], np.random.default_rng(0))

    def test_zero_walkers(self, chain):
        with pytest.raises(ValueError):
            random_walk_query(chain, 0, [], np.random.default_rng(0), walkers=0)


class TestWalkMechanics:
    def test_chain_walk_finds_end(self, chain):
        result = random_walk_query(
            chain, 0, [3], np.random.default_rng(0), walkers=1, max_hops=10
        )
        # A non-backtracking walker on a chain marches straight to the end.
        assert result.success
        assert result.first_response_time == pytest.approx(6.0)
        assert result.holders_reached == (3,)

    def test_hop_budget_respected(self, chain):
        result = random_walk_query(
            chain, 0, [3], np.random.default_rng(0), walkers=1, max_hops=2
        )
        assert not result.success
        assert result.messages <= 2

    def test_traffic_equals_walk_cost(self, chain):
        result = random_walk_query(
            chain, 0, [], np.random.default_rng(0), walkers=1, max_hops=3
        )
        assert result.traffic_cost == pytest.approx(3.0)
        assert result.messages == 3

    def test_more_walkers_more_coverage(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 40, avg_degree=6, rng=np.random.default_rng(1)
        )
        few = random_walk_query(
            ov, 0, [], np.random.default_rng(2), walkers=1, max_hops=8,
        )
        many = random_walk_query(
            ov, 0, [], np.random.default_rng(2), walkers=8, max_hops=8,
        )
        assert many.search_scope >= few.search_scope
        assert many.messages > few.messages

    def test_stop_on_hit(self, chain):
        greedy = random_walk_query(
            chain, 0, [1], np.random.default_rng(0), walkers=1, max_hops=10,
            stop_on_hit=True,
        )
        assert greedy.messages == 1

    def test_isolated_source(self, grid_physical):
        from repro.topology.overlay import Overlay

        ov = Overlay(grid_physical, {0: 0})
        result = random_walk_query(ov, 0, [], np.random.default_rng(0))
        assert result.search_scope == 1
        assert result.traffic_cost == 0.0

    def test_deterministic_per_seed(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 30, avg_degree=6, rng=np.random.default_rng(1)
        )
        a = random_walk_query(ov, 0, [5], np.random.default_rng(9), walkers=4)
        b = random_walk_query(ov, 0, [5], np.random.default_rng(9), walkers=4)
        assert a.traffic_cost == b.traffic_cost
        assert a.reached == b.reached


class TestVersusFlooding:
    def test_walks_use_less_traffic_than_flooding(self, ba_physical):
        ov = small_world_overlay(
            ba_physical, 40, avg_degree=8, rng=np.random.default_rng(3)
        )
        flood = propagate(ov, 0, blind_flooding_strategy(ov), ttl=None)
        walk = random_walk_query(
            ov, 0, [], np.random.default_rng(4), walkers=4, max_hops=16
        )
        assert walk.traffic_cost < flood.traffic_cost
        # ... at the price of partial coverage.
        assert walk.search_scope < flood.search_scope
