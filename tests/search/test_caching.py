"""Unit tests for response index caching."""

import pytest

from repro.search.caching import IndexCache, IndexCacheStore, cached_query
from repro.search.flooding import blind_flooding_strategy
from tests.conftest import make_overlay_from_weighted_edges


@pytest.fixture
def chain():
    return make_overlay_from_weighted_edges(
        [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]
    )


class TestIndexCache:
    def test_insert_and_lookup(self):
        cache = IndexCache(capacity=2)
        cache.insert("song.mp3", 7)
        assert cache.lookup("song.mp3") == 7
        assert "song.mp3" in cache

    def test_miss_returns_none(self):
        assert IndexCache().lookup("nope") is None

    def test_lru_eviction(self):
        cache = IndexCache(capacity=2)
        cache.insert("a", 1)
        cache.insert("b", 2)
        cache.insert("c", 3)
        assert cache.lookup("a") is None
        assert cache.lookup("b") == 2
        assert cache.lookup("c") == 3

    def test_lookup_refreshes_recency(self):
        cache = IndexCache(capacity=2)
        cache.insert("a", 1)
        cache.insert("b", 2)
        cache.lookup("a")
        cache.insert("c", 3)
        assert cache.lookup("a") == 1
        assert cache.lookup("b") is None

    def test_reinsert_updates(self):
        cache = IndexCache(capacity=2)
        cache.insert("a", 1)
        cache.insert("a", 9)
        assert cache.lookup("a") == 9
        assert len(cache) == 1

    def test_invalidate_holder(self):
        cache = IndexCache(capacity=4)
        cache.insert("a", 1)
        cache.insert("b", 1)
        cache.insert("c", 2)
        assert cache.invalidate(1) == 2
        assert cache.lookup("a") is None
        assert cache.lookup("c") == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            IndexCache(capacity=0)

    def test_paper_default_capacity(self):
        # "using a 100-item size cache at each peer"
        assert IndexCache(100).capacity == 100


class TestIndexCacheStore:
    def test_lazy_per_peer(self):
        store = IndexCacheStore(capacity=5)
        a = store.cache_of(1)
        assert store.cache_of(1) is a
        assert store.cache_of(2) is not a

    def test_drop_peer(self):
        store = IndexCacheStore()
        store.cache_of(1).insert("a", 2)
        store.drop_peer(1)
        assert store.cache_of(1).lookup("a") is None

    def test_invalidate_holder_across_caches(self):
        store = IndexCacheStore()
        store.cache_of(1).insert("a", 9)
        store.cache_of(2).insert("a", 9)
        store.invalidate_holder(9)
        assert store.cache_of(1).lookup("a") is None
        assert store.cache_of(2).lookup("a") is None


class TestCachedQuery:
    def test_first_query_populates_reverse_path(self, chain):
        caches = IndexCacheStore(capacity=10)
        result = cached_query(
            chain, 0, "obj", [4], blind_flooding_strategy(chain), caches,
        )
        assert result.success
        # Every relay on the reverse path 4-3-2-1-0 caches the index.
        for relay in (0, 1, 2, 3):
            assert caches.cache_of(relay).lookup("obj") == 4

    def test_second_query_stops_at_cache(self, chain):
        caches = IndexCacheStore(capacity=10)
        cached_query(chain, 0, "obj", [4], blind_flooding_strategy(chain), caches)
        second = cached_query(
            chain, 1, "obj", [4], blind_flooding_strategy(chain), caches,
        )
        # Peer 1 itself holds the cached index... its neighbors answer; the
        # query never needs to reach peer 4's end of the chain again.
        assert second.success
        assert second.first_response_time is not None

    def test_cache_hit_reduces_traffic(self, chain):
        caches = IndexCacheStore(capacity=10)
        cold = cached_query(
            chain, 0, "obj", [4], blind_flooding_strategy(chain), caches,
        )
        warm = cached_query(
            chain, 0, "obj", [4], blind_flooding_strategy(chain), caches,
        )
        assert warm.traffic_cost < cold.traffic_cost
        assert warm.first_response_time <= cold.first_response_time

    def test_stale_cache_entry_ignored(self, chain):
        caches = IndexCacheStore(capacity=10)
        caches.cache_of(1).insert("obj", 99)  # 99 is not in the overlay
        result = cached_query(
            chain, 0, "obj", [4], blind_flooding_strategy(chain), caches,
        )
        # The stale index neither answers nor stops the query.
        assert result.success
        assert result.holders_reached == (4,)

    def test_cache_miss_equals_plain_query(self, chain):
        from repro.search.flooding import run_query

        caches = IndexCacheStore(capacity=10)
        cached = cached_query(
            chain, 0, "obj", [4], blind_flooding_strategy(chain), caches,
        )
        plain = run_query(
            chain, 0, blind_flooding_strategy(chain), [4], ttl=None
        )
        assert cached.traffic_cost == pytest.approx(plain.traffic_cost)
        assert cached.first_response_time == pytest.approx(
            plain.first_response_time
        )
