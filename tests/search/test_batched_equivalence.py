"""Batched propagation engine vs. the scalar reference engine.

The contract of :mod:`repro.search.batch` is *bit-identical* results: the
compiled-graph kernels must reproduce the scalar engine's arrival times,
parents, hop counts, traffic cost (same float, same addition order),
message and duplicate counts — across strategies, TTLs, and seeds.  These
tests compare full :class:`~repro.search.flooding.QueryPropagation`
records with dataclass equality, which is exact float equality.
"""

import numpy as np
import pytest

from repro.core.ace import AceConfig, AceProtocol
from repro.perf import counters
from repro.search.batch import (
    RingPropagator,
    batched_queries_enabled,
    compile_strategy,
    propagate_many,
    propagate_single,
    run_queries,
    scalar_queries,
    set_batched_queries,
)
from repro.search.expanding_ring import expanding_ring_query
from repro.search.flooding import blind_flooding_strategy, propagate, run_query
from repro.search.tree_routing import ace_strategy
from repro.topology.generators import barabasi_albert
from repro.topology.overlay import small_world_overlay


def make_world(seed: int, peers: int = 36):
    """Small-world overlay on a BA underlay, edge costs warmed."""
    rng = np.random.default_rng(seed)
    physical = barabasi_albert(160, m=2, rng=rng)
    overlay = small_world_overlay(physical, peers, avg_degree=6, rng=rng)
    overlay.warm_edge_costs()
    return overlay


def make_strategy(overlay, kind: str, seed: int):
    if kind == "flooding":
        return blind_flooding_strategy(overlay)
    protocol = AceProtocol(
        overlay, AceConfig(depth=2), rng=np.random.default_rng(seed)
    )
    protocol.rebuild_all_trees()
    return ace_strategy(protocol)


def sample_sources(overlay, rng, k: int = 10):
    peers = overlay.peers()
    return [peers[int(i)] for i in rng.integers(0, len(peers), size=k)]


class TestBatchedMatchesScalar:
    @pytest.mark.parametrize("kind", ["flooding", "ace"])
    @pytest.mark.parametrize("ttl", [3, 7, None])
    @pytest.mark.parametrize("seed", [1, 2, 11])
    def test_full_propagation_equality(self, kind, ttl, seed):
        overlay = make_world(seed)
        strategy = make_strategy(overlay, kind, seed)
        sources = sample_sources(overlay, np.random.default_rng(seed + 99))
        batch = propagate_many(overlay, sources, strategy, ttl=ttl)
        for i, src in enumerate(sources):
            scalar = propagate(overlay, src, strategy, ttl=ttl)
            assert batch.result(i) == scalar

    @pytest.mark.parametrize("ttl", [1, 2])
    def test_tiny_ttl_equality(self, ttl):
        overlay = make_world(3)
        strategy = blind_flooding_strategy(overlay)
        sources = sample_sources(overlay, np.random.default_rng(7))
        batch = propagate_many(overlay, sources, strategy, ttl=ttl)
        for i, src in enumerate(sources):
            assert batch.result(i) == propagate(overlay, src, strategy, ttl=ttl)

    def test_propagate_single_matches_scalar(self):
        overlay = make_world(5)
        strategy = blind_flooding_strategy(overlay)
        src = overlay.peers()[0]
        assert propagate_single(overlay, src, strategy, ttl=7) == propagate(
            overlay, src, strategy, ttl=7
        )

    def test_unknown_source_raises(self):
        overlay = make_world(5)
        strategy = blind_flooding_strategy(overlay)
        with pytest.raises(KeyError):
            propagate_many(overlay, [10_000], strategy, ttl=None)

    def test_run_queries_matches_run_query(self):
        overlay = make_world(4)
        strategy = blind_flooding_strategy(overlay)
        peers = overlay.peers()
        queries = [
            (peers[0], (peers[3], peers[8])),
            (peers[1], (peers[1],)),          # holder == source: no response
            (peers[2], ()),                   # no holders at all
            (peers[5], tuple(peers[-4:])),
        ]
        stats = run_queries(overlay, strategy, queries, ttl=7)
        for (source, holders), got in zip(queries, stats):
            want = run_query(overlay, source, strategy, holders, ttl=7)
            assert got.source == source
            assert got.traffic_cost == want.traffic_cost
            assert got.search_scope == want.search_scope
            assert got.holders_reached == want.holders_reached
            assert got.first_response_time == want.first_response_time
            assert got.success == want.success


class TestCacheInvalidation:
    def test_flooding_graph_memoized_per_epoch(self):
        overlay = make_world(6)
        strategy = blind_flooding_strategy(overlay)
        g1 = compile_strategy(overlay, strategy)
        g2 = compile_strategy(overlay, strategy)
        assert g1 is g2

    def test_churn_bumps_epoch_and_recompiles(self):
        overlay = make_world(6)
        strategy = blind_flooding_strategy(overlay)
        before = compile_strategy(overlay, strategy)
        a, b = next(iter(overlay.edges()))
        epoch = overlay.epoch
        assert overlay.disconnect(a, b)
        assert overlay.epoch > epoch
        after = compile_strategy(overlay, strategy)
        assert after is not before
        # Post-churn batched results must match the scalar engine on the
        # mutated topology, not the stale compiled graph.
        src = overlay.peers()[0]
        assert propagate_single(overlay, src, strategy, ttl=None) == propagate(
            overlay, src, strategy, ttl=None
        )

    def test_remove_peer_bumps_epoch(self):
        overlay = make_world(6)
        epoch = overlay.epoch
        overlay.remove_peer(overlay.peers()[-1])
        assert overlay.epoch > epoch

    def test_ace_step_bumps_state_version_and_recompiles(self):
        overlay = make_world(8)
        protocol = AceProtocol(
            overlay, AceConfig(depth=2), rng=np.random.default_rng(0)
        )
        protocol.rebuild_all_trees()
        strategy = ace_strategy(protocol)
        before = compile_strategy(overlay, strategy)
        version = protocol.state_version
        protocol.step()
        assert protocol.state_version > version
        after = compile_strategy(overlay, strategy)
        assert after is not before
        src = overlay.peers()[0]
        assert propagate_single(overlay, src, strategy, ttl=None) == propagate(
            overlay, src, strategy, ttl=None
        )


class TestScalarFallback:
    def test_custom_strategy_falls_back(self):
        overlay = make_world(9)

        def custom(peer, came_from):
            # No compiled_spec: the compiler must decline, not guess.
            return overlay.neighbors(peer)

        assert compile_strategy(overlay, custom) is None
        src = overlay.peers()[0]
        before = counters.batched_queries
        prop = propagate_single(overlay, src, custom, ttl=7)
        assert counters.batched_queries == before
        assert prop == propagate(overlay, src, custom, ttl=7)

    def test_propagate_many_rejects_uncompilable(self):
        overlay = make_world(9)
        with pytest.raises(ValueError):
            propagate_many(overlay, [overlay.peers()[0]], lambda p, c: (), ttl=7)

    def test_stop_at_stays_scalar(self):
        # The cached-query flow passes stop_at to the scalar propagate();
        # batch has no stop_at parameter by design — this pins that the
        # scalar path still honors it.
        overlay = make_world(9)
        strategy = blind_flooding_strategy(overlay)
        src = overlay.peers()[0]
        full = propagate(overlay, src, strategy, ttl=None)
        others = [p for p in full.reached if p != src]
        blocker = max(others, key=lambda p: full.hops[p])
        stopped = propagate(
            overlay, src, strategy, ttl=None, stop_at=lambda p: p == blocker
        )
        assert blocker in stopped.reached
        assert stopped.traffic_cost <= full.traffic_cost


class TestBatchingToggle:
    def test_set_batched_queries_returns_previous(self):
        prev = set_batched_queries(False)
        try:
            assert prev is True
            assert not batched_queries_enabled()
        finally:
            set_batched_queries(prev)
        assert batched_queries_enabled()

    def test_scalar_queries_context_restores(self):
        assert batched_queries_enabled()
        with scalar_queries():
            assert not batched_queries_enabled()
        assert batched_queries_enabled()

    def test_scalar_mode_skips_kernel(self):
        overlay = make_world(10)
        strategy = blind_flooding_strategy(overlay)
        src = overlay.peers()[0]
        before = counters.batched_queries
        with scalar_queries():
            prop = propagate_single(overlay, src, strategy, ttl=7)
        assert counters.batched_queries == before
        assert prop == propagate(overlay, src, strategy, ttl=7)


class TestExpandingRing:
    def test_batched_matches_scalar_mode(self):
        overlay = make_world(12)
        strategy = blind_flooding_strategy(overlay)
        peers = overlay.peers()
        holders = peers[-3:]
        batched = expanding_ring_query(overlay, peers[0], strategy, holders)
        with scalar_queries():
            scalar = expanding_ring_query(overlay, peers[0], strategy, holders)
        assert batched == scalar

    def test_failed_search_matches_scalar_mode(self):
        overlay = make_world(12)
        strategy = blind_flooding_strategy(overlay)
        src = overlay.peers()[0]
        batched = expanding_ring_query(overlay, src, strategy, holders=())
        with scalar_queries():
            scalar = expanding_ring_query(overlay, src, strategy, holders=())
        assert batched == scalar
        assert not batched.success

    def test_ring_propagator_matches_per_ring_scalar(self):
        overlay = make_world(13)
        strategy = blind_flooding_strategy(overlay)
        src = overlay.peers()[0]
        propagator = RingPropagator(overlay, src, strategy)
        for ttl in (1, 2, 4, 7, None):
            assert propagator.propagate(ttl) == propagate(
                overlay, src, strategy, ttl=ttl
            )


class TestCounters:
    def test_batched_queries_counted(self):
        overlay = make_world(14)
        strategy = blind_flooding_strategy(overlay)
        sources = overlay.peers()[:6]
        before_batched = counters.batched_queries
        before_queries = counters.queries
        propagate_many(overlay, sources, strategy, ttl=None)
        assert counters.batched_queries - before_batched == len(sources)
        assert counters.queries - before_queries == len(sources)

    def test_compiled_strategies_counts_cache_misses(self):
        overlay = make_world(15)
        strategy = blind_flooding_strategy(overlay)
        before = counters.compiled_strategies
        compile_strategy(overlay, strategy)
        compile_strategy(overlay, strategy)  # cache hit: no recompile
        assert counters.compiled_strategies - before == 1
