"""Unit tests for the query propagation engine and blind flooding."""

import pytest

from repro.search.flooding import (
    GNUTELLA_TTL,
    blind_flooding_strategy,
    propagate,
    run_query,
)
from repro.topology.overlay import Overlay
from repro.topology.physical import PhysicalTopology
from tests.conftest import make_overlay_from_weighted_edges


@pytest.fixture
def chain():
    """0-1-2-3 logical chain with unit link delays."""
    return make_overlay_from_weighted_edges(
        [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]
    )


@pytest.fixture
def diamond():
    """0 connects to 1 and 2; both connect to 3.  Asymmetric delays."""
    return make_overlay_from_weighted_edges(
        [(0, 1, 1.0), (0, 2, 5.0), (1, 3, 1.0), (2, 3, 1.0)]
    )


class TestReachability:
    def test_reaches_all_connected_peers(self, chain):
        prop = propagate(chain, 0, blind_flooding_strategy(chain), ttl=None)
        assert prop.reached == {0, 1, 2, 3}
        assert prop.search_scope == 4

    def test_source_always_reached(self, chain):
        prop = propagate(chain, 2, blind_flooding_strategy(chain), ttl=None)
        assert 2 in prop.reached
        assert prop.arrival_time[2] == 0.0

    def test_disconnected_component_not_reached(self, grid_physical):
        ov = Overlay(grid_physical, {0: 0, 1: 1, 2: 10, 3: 11})
        ov.connect(0, 1)
        ov.connect(2, 3)
        prop = propagate(ov, 0, blind_flooding_strategy(ov), ttl=None)
        assert prop.reached == {0, 1}

    def test_unknown_source_raises(self, chain):
        with pytest.raises(KeyError):
            propagate(chain, 99, blind_flooding_strategy(chain))


class TestTtl:
    def test_ttl_limits_hops(self, chain):
        prop = propagate(chain, 0, blind_flooding_strategy(chain), ttl=2)
        assert prop.reached == {0, 1, 2}

    def test_ttl_one_is_neighbors_only(self, chain):
        prop = propagate(chain, 1, blind_flooding_strategy(chain), ttl=1)
        assert prop.reached == {0, 1, 2}

    def test_default_ttl_is_gnutella(self):
        assert GNUTELLA_TTL == 7

    def test_hops_recorded(self, chain):
        prop = propagate(chain, 0, blind_flooding_strategy(chain), ttl=None)
        assert prop.hops == {0: 0, 1: 1, 2: 2, 3: 3}


class TestTiming:
    def test_arrival_times_are_shortest_overlay_paths(self, diamond):
        # The drawn 0-2 link (5) is undercut by the underlay route 0-1-3-2
        # (cost 3) — the logical link *cost* is the shortest-path delay.
        assert diamond.cost(0, 2) == pytest.approx(3.0)
        prop = propagate(diamond, 0, blind_flooding_strategy(diamond), ttl=None)
        assert prop.arrival_time[1] == pytest.approx(1.0)
        assert prop.arrival_time[2] == pytest.approx(3.0)
        # 3 is reached faster via 1 (1 + 1) than via 2.
        assert prop.arrival_time[3] == pytest.approx(2.0)

    def test_parent_tracks_first_delivery(self, diamond):
        prop = propagate(diamond, 0, blind_flooding_strategy(diamond), ttl=None)
        assert prop.parent[3] == 1

    def test_path_to(self, diamond):
        prop = propagate(diamond, 0, blind_flooding_strategy(diamond), ttl=None)
        assert prop.path_to(3) == [0, 1, 3]

    def test_path_to_unreached_raises(self, chain):
        prop = propagate(chain, 0, blind_flooding_strategy(chain), ttl=1)
        with pytest.raises(KeyError):
            prop.path_to(3)


class TestTrafficAccounting:
    def test_chain_traffic(self, chain):
        prop = propagate(chain, 0, blind_flooding_strategy(chain), ttl=None)
        # Each link crossed exactly once (no cycles): cost 3, messages 3.
        assert prop.traffic_cost == pytest.approx(3.0)
        assert prop.messages == 3
        assert prop.duplicate_messages == 0

    def test_triangle_duplicates(self):
        ov = make_overlay_from_weighted_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]
        )
        prop = propagate(ov, 0, blind_flooding_strategy(ov), ttl=None)
        # 0 sends to 1 and 2; each forwards to the other: 4 messages, and
        # the two crossing messages are duplicates.
        assert prop.messages == 4
        assert prop.duplicate_messages == 2
        assert prop.traffic_cost == pytest.approx(4.0)

    def test_duplicate_cost_still_charged(self, diamond):
        prop = propagate(diamond, 0, blind_flooding_strategy(diamond), ttl=None)
        # Every logical link is crossed in both directions except back
        # toward the sender; the sum of one crossing per link is a strict
        # lower bound once duplicates occur.
        one_crossing_each = sum(
            diamond.cost(u, v) for u, v in diamond.edges()
        )
        assert prop.duplicate_messages > 0
        assert prop.traffic_cost > one_crossing_each

    def test_figure1_style_m_receives_many_copies(self):
        """The paper's Figure 1: a clique corner receives the query from
        every clique member even though it needs only one copy."""
        clique = [(u, v, 1.0) for u in range(4) for v in range(u + 1, 4)]
        ov = make_overlay_from_weighted_edges(clique)
        prop = propagate(ov, 0, blind_flooding_strategy(ov), ttl=None)
        # 0 sends 3; each of 1, 2, 3 forwards to the 2 peers that are not
        # its sender: 9 messages, of which 6 are duplicate deliveries.
        assert prop.messages == 9
        assert prop.duplicate_messages == 6


class TestStopAt:
    def test_stop_peer_receives_but_does_not_forward(self, chain):
        prop = propagate(
            chain, 0, blind_flooding_strategy(chain), ttl=None,
            stop_at=lambda p: p == 1,
        )
        assert prop.reached == {0, 1}

    def test_stop_at_ignored_for_source(self, chain):
        prop = propagate(
            chain, 0, blind_flooding_strategy(chain), ttl=None,
            stop_at=lambda p: True,
        )
        assert prop.reached == {0, 1}


class TestRunQuery:
    def test_response_time_is_round_trip(self, chain):
        result = run_query(
            chain, 0, blind_flooding_strategy(chain), holders=[2], ttl=None
        )
        assert result.success
        assert result.first_response_time == pytest.approx(4.0)
        assert result.holders_reached == (2,)

    def test_first_of_many_responders(self, chain):
        result = run_query(
            chain, 0, blind_flooding_strategy(chain), holders=[2, 3], ttl=None
        )
        assert result.first_response_time == pytest.approx(4.0)
        assert result.holders_reached == (2, 3)

    def test_no_holder_reached(self, chain):
        result = run_query(
            chain, 0, blind_flooding_strategy(chain), holders=[3], ttl=1
        )
        assert not result.success
        assert result.first_response_time is None
        assert result.holders_reached == ()

    def test_source_holding_object_not_a_responder(self, chain):
        result = run_query(
            chain, 0, blind_flooding_strategy(chain), holders=[0], ttl=None
        )
        assert not result.success

    def test_metrics_passthrough(self, chain):
        result = run_query(
            chain, 0, blind_flooding_strategy(chain), holders=[3], ttl=None
        )
        assert result.traffic_cost == result.propagation.traffic_cost
        assert result.search_scope == 4
