"""Unit tests for ACE multicast-tree query routing."""

import numpy as np
import pytest

from repro.core.ace import AceConfig, AceProtocol
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_propagate, ace_query, ace_strategy
from repro.topology.overlay import small_world_overlay
from tests.conftest import make_overlay_from_weighted_edges


@pytest.fixture
def optimized(ba_physical):
    ov = small_world_overlay(
        ba_physical, 30, avg_degree=6, rng=np.random.default_rng(8)
    )
    protocol = AceProtocol(ov, rng=np.random.default_rng(8))
    protocol.run(3)
    return protocol


class TestStrategy:
    def test_uses_flooding_sets(self, optimized):
        strategy = ace_strategy(optimized)
        peer = optimized.overlay.peers()[0]
        assert set(strategy(peer, None)) == optimized.flooding_neighbors(peer)

    def test_fresh_peer_floods_all(self):
        ov = make_overlay_from_weighted_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.0)]
        )
        protocol = AceProtocol(ov, rng=np.random.default_rng(0))
        strategy = ace_strategy(protocol)
        assert set(strategy(0, None)) == {1, 2}


class TestPropagation:
    def test_full_scope(self, optimized):
        for source in optimized.overlay.peers()[:5]:
            prop = ace_propagate(optimized, source)
            assert prop.reached == set(optimized.overlay.peers())

    def test_traffic_not_above_blind(self, optimized):
        ov = optimized.overlay
        for source in ov.peers()[:5]:
            blind = propagate(ov, source, blind_flooding_strategy(ov), ttl=None)
            tree = ace_propagate(optimized, source)
            assert tree.traffic_cost <= blind.traffic_cost

    def test_ttl_respected(self, optimized):
        source = optimized.overlay.peers()[0]
        limited = ace_propagate(optimized, source, ttl=1)
        assert limited.reached <= set(optimized.overlay.peers())
        assert max(limited.hops.values()) <= 1

    def test_triangle_pruned(self):
        """On a single mismatched triangle the long edge carries no query."""
        ov = make_overlay_from_weighted_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]
        )
        protocol = AceProtocol(
            ov, AceConfig(shed_redundant=False), rng=np.random.default_rng(0)
        )
        protocol.rebuild_all_trees()
        prop = ace_propagate(protocol, 0)
        assert prop.reached == {0, 1, 2}
        # Blind flooding costs 1+5+1+1 = 8; the tree costs 2 with no dups.
        assert prop.traffic_cost == pytest.approx(2.0)
        assert prop.duplicate_messages == 0


class TestAceQuery:
    def test_query_finds_holders(self, optimized):
        peers = optimized.overlay.peers()
        result = ace_query(optimized, peers[0], holders=[peers[-1]])
        assert result.success
        assert result.first_response_time > 0

    def test_response_not_slower_than_twice_arrival(self, optimized):
        peers = optimized.overlay.peers()
        result = ace_query(optimized, peers[0], holders=peers[1:4])
        arrivals = result.propagation.arrival_time
        best = min(arrivals[h] for h in result.holders_reached)
        assert result.first_response_time == pytest.approx(2 * best)
