"""Seed-to-figure reproducibility: one config, one result, bit for bit.

This is the regression gate behind the determinism work (and REP001): every
RNG in the pipeline is either threaded from the scenario seed or falls back
to :data:`repro.rng.DEFAULT_SEED`, so two runs of the same experiment from
the same :class:`ScenarioConfig` must produce byte-identical metric dicts.
"""

import dataclasses
import json

from repro.experiments.dynamic_env import (
    DynamicConfig,
    run_dynamic_experiment,
    run_dynamic_trials,
)
from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.experiments.static_env import run_static_experiment, run_static_trials
from repro.core.batch_ace import scalar_ace
from repro.rng import DEFAULT_SEED, ensure_rng
from repro.search.batch import scalar_queries

CONFIG = ScenarioConfig(physical_nodes=200, peers=40, avg_degree=6, seed=5)


def as_bytes(series) -> bytes:
    """Canonical byte serialization of a result dataclass."""
    return json.dumps(dataclasses.asdict(series), sort_keys=True).encode()


class TestStaticReproducibility:
    def test_same_seed_static_runs_are_byte_identical(self):
        runs = [
            run_static_experiment(build_scenario(CONFIG), steps=3, query_samples=8)
            for _ in range(2)
        ]
        assert as_bytes(runs[0]) == as_bytes(runs[1])

    def test_different_seed_changes_the_world(self):
        # Guard against the trap of "identical because constant": the seed
        # must actually steer the result.
        a = run_static_experiment(build_scenario(CONFIG), steps=2, query_samples=8)
        other = dataclasses.replace(CONFIG, seed=6)
        b = run_static_experiment(build_scenario(other), steps=2, query_samples=8)
        assert as_bytes(a) != as_bytes(b)


class TestDynamicReproducibility:
    def test_same_seed_dynamic_runs_are_byte_identical(self):
        dyn = DynamicConfig(total_queries=120, window=40)
        runs = [
            run_dynamic_experiment(build_scenario(CONFIG), dyn) for _ in range(2)
        ]
        assert as_bytes(runs[0]) == as_bytes(runs[1])


class TestParallelMatchesSerial:
    """Worker-count invariance: the fan-out must not perturb a single bit.

    Parallel trials rebuild their scenario over a shared-memory underlay
    attached inside the worker; serial trials build everything inline.  Both
    paths seed identically from the config, so the results must be
    byte-identical — the determinism guarantee the parallel harness
    advertises.
    """

    def test_static_trials_parallel_is_byte_identical_to_serial(self):
        configs = [CONFIG, dataclasses.replace(CONFIG, avg_degree=8.0)]
        serial = run_static_trials(configs, steps=2, query_samples=6, max_workers=1)
        parallel = run_static_trials(configs, steps=2, query_samples=6, max_workers=2)
        assert [as_bytes(s) for s in serial] == [as_bytes(p) for p in parallel]

    def test_dynamic_trials_parallel_is_byte_identical_to_serial(self):
        arms = [
            (CONFIG, DynamicConfig(total_queries=90, window=30, enable_ace=False)),
            (CONFIG, DynamicConfig(total_queries=90, window=30)),
        ]
        serial = run_dynamic_trials(arms, max_workers=1)
        parallel = run_dynamic_trials(arms, max_workers=2)
        assert [as_bytes(s) for s in serial] == [as_bytes(p) for p in parallel]

    def test_parallel_dynamic_arm_matches_direct_experiment(self):
        dyn = DynamicConfig(total_queries=90, window=30)
        direct = run_dynamic_experiment(build_scenario(CONFIG), dyn)
        (via_harness,) = run_dynamic_trials([(CONFIG, dyn)], max_workers=1)
        assert as_bytes(direct) == as_bytes(via_harness)


class TestBatchedMatchesScalarEngine:
    """The batched kernel is an optimization, not a treatment.

    Running the experiments with the compiled-graph engine (the default)
    must produce byte-identical figures to forcing every query through the
    scalar reference engine — same floats, same counts.  This is the
    experiment-level end of the contract pinned peer-by-peer in
    ``tests/search/test_batched_equivalence.py``.
    """

    def test_static_experiment_batched_is_byte_identical_to_scalar(self):
        batched = run_static_experiment(
            build_scenario(CONFIG), steps=3, query_samples=8
        )
        with scalar_queries():
            scalar = run_static_experiment(
                build_scenario(CONFIG), steps=3, query_samples=8
            )
        assert as_bytes(batched) == as_bytes(scalar)

    def test_dynamic_experiment_batched_is_byte_identical_to_scalar(self):
        dyn = DynamicConfig(total_queries=120, window=40)
        batched = run_dynamic_experiment(build_scenario(CONFIG), dyn)
        with scalar_queries():
            scalar = run_dynamic_experiment(build_scenario(CONFIG), dyn)
        assert as_bytes(batched) == as_bytes(scalar)

    def test_dynamic_no_ace_batched_is_byte_identical_to_scalar(self):
        dyn = DynamicConfig(total_queries=120, window=40, enable_ace=False)
        batched = run_dynamic_experiment(build_scenario(CONFIG), dyn)
        with scalar_queries():
            scalar = run_dynamic_experiment(build_scenario(CONFIG), dyn)
        assert as_bytes(batched) == as_bytes(scalar)


class TestArrayEngineMatchesObject:
    """The struct-of-arrays overlay engine is an optimization, not a model.

    ``engine="array"`` lowers the generated overlay into flat CSR arrays
    (:class:`repro.topology.soa.ArrayOverlay`) and pairs ACE with the flat
    state store; every figure — static and dynamic, with and without ACE,
    batched and scalar, serial and parallel — must come out byte-identical
    to the object reference engine.
    """

    ARRAY = dataclasses.replace(CONFIG, engine="array")

    def test_static_experiment_is_byte_identical(self):
        obj = run_static_experiment(
            build_scenario(CONFIG), steps=3, query_samples=8
        )
        arr = run_static_experiment(
            build_scenario(self.ARRAY), steps=3, query_samples=8
        )
        assert as_bytes(obj) == as_bytes(arr)

    def test_dynamic_experiment_is_byte_identical(self):
        dyn = DynamicConfig(total_queries=120, window=40)
        obj = run_dynamic_experiment(build_scenario(CONFIG), dyn)
        arr = run_dynamic_experiment(build_scenario(self.ARRAY), dyn)
        assert as_bytes(obj) == as_bytes(arr)

    def test_landmark_oracle_static_is_byte_identical(self):
        # The array engine fills costs through the oracle's pairwise
        # interface while the object engine slices estimate vectors; the
        # two forms are pinned bit-identical in tests/oracle, and this
        # checks the figure-level consequence.
        landmark = dataclasses.replace(CONFIG, oracle="landmark:8")
        obj = run_static_experiment(
            build_scenario(landmark), steps=3, query_samples=8
        )
        arr = run_static_experiment(
            build_scenario(dataclasses.replace(landmark, engine="array")),
            steps=3,
            query_samples=8,
        )
        assert as_bytes(obj) == as_bytes(arr)

    def test_dynamic_no_ace_is_byte_identical(self):
        dyn = DynamicConfig(total_queries=120, window=40, enable_ace=False)
        obj = run_dynamic_experiment(build_scenario(CONFIG), dyn)
        arr = run_dynamic_experiment(build_scenario(self.ARRAY), dyn)
        assert as_bytes(obj) == as_bytes(arr)

    def test_array_engine_batched_is_byte_identical_to_scalar(self):
        batched = run_static_experiment(
            build_scenario(self.ARRAY), steps=3, query_samples=8
        )
        with scalar_queries():
            scalar = run_static_experiment(
                build_scenario(self.ARRAY), steps=3, query_samples=8
            )
        assert as_bytes(batched) == as_bytes(scalar)

    def test_array_engine_parallel_is_byte_identical_to_serial(self):
        configs = [self.ARRAY, dataclasses.replace(self.ARRAY, seed=6)]
        serial = run_static_trials(
            configs, steps=2, query_samples=6, max_workers=1
        )
        parallel = run_static_trials(
            configs, steps=2, query_samples=6, max_workers=2
        )
        assert [as_bytes(s) for s in serial] == [as_bytes(p) for p in parallel]


class TestBatchedAceKernelMatchesScalar:
    """The batched ACE kernel is an optimization, not a treatment.

    On the array engine the step loop routes through
    :func:`repro.core.batch_ace.batched_step` (one CSR closure sweep, flat
    Phase-1 pass, segmented MST) by default; forcing the scalar reference
    loop with ``scalar_ace()`` (or ``REPRO_SCALAR_ACE=1`` /
    ``--scalar-ace``) must not move a byte of any figure — static or
    dynamic, exact or landmark oracle.  The protocol-level observables
    (reports, actions, flat store rows) are pinned peer-by-peer in
    ``tests/core/test_batch_ace.py``; these are the figure-level rows.
    """

    ARRAY = dataclasses.replace(CONFIG, engine="array")

    def test_static_experiment_batched_is_byte_identical_to_scalar(self):
        batched = run_static_experiment(
            build_scenario(self.ARRAY), steps=3, query_samples=8
        )
        with scalar_ace():
            scalar = run_static_experiment(
                build_scenario(self.ARRAY), steps=3, query_samples=8
            )
        assert as_bytes(batched) == as_bytes(scalar)

    def test_dynamic_churn_batched_is_byte_identical_to_scalar(self):
        dyn = DynamicConfig(total_queries=120, window=40)
        batched = run_dynamic_experiment(build_scenario(self.ARRAY), dyn)
        with scalar_ace():
            scalar = run_dynamic_experiment(build_scenario(self.ARRAY), dyn)
        assert as_bytes(batched) == as_bytes(scalar)

    def test_landmark_oracle_static_is_byte_identical(self):
        landmark = dataclasses.replace(self.ARRAY, oracle="landmark:8")
        batched = run_static_experiment(
            build_scenario(landmark), steps=3, query_samples=8
        )
        with scalar_ace():
            scalar = run_static_experiment(
                build_scenario(landmark), steps=3, query_samples=8
            )
        assert as_bytes(batched) == as_bytes(scalar)

    def test_scalar_kernel_still_matches_the_object_engine(self):
        # Transitivity check pinning all three paths together: object
        # reference == array scalar == array batched.
        obj = run_static_experiment(
            build_scenario(CONFIG), steps=3, query_samples=8
        )
        with scalar_ace():
            arr = run_static_experiment(
                build_scenario(self.ARRAY), steps=3, query_samples=8
            )
        assert as_bytes(obj) == as_bytes(arr)


class TestOracleReproducibility:
    """The oracle seam must not move a byte — in either direction.

    ``oracle="exact"`` (the default, spelled out or not) is required to be
    byte-identical to the pre-seam pipeline, and the landmark backend is
    required to be exactly as deterministic: same config, same figures,
    serial or parallel.  The oracle RNG rides seed-stream 5 of the scenario
    seed (streams 0–3 are underlay/overlay/workload/run), so enabling it
    never perturbs the existing draws.
    """

    def test_explicit_exact_matches_default(self):
        default = run_static_experiment(
            build_scenario(CONFIG), steps=2, query_samples=8
        )
        explicit = run_static_experiment(
            build_scenario(dataclasses.replace(CONFIG, oracle="exact")),
            steps=2,
            query_samples=8,
        )
        assert as_bytes(default) == as_bytes(explicit)

    def test_landmark_static_runs_are_byte_identical(self):
        config = dataclasses.replace(CONFIG, oracle="landmark:8")
        runs = [
            run_static_experiment(build_scenario(config), steps=2, query_samples=8)
            for _ in range(2)
        ]
        assert as_bytes(runs[0]) == as_bytes(runs[1])

    def test_landmark_actually_changes_the_costs(self):
        # Guard against a seam that silently ignores the spec: approximate
        # delays must steer the figures away from the exact backend's.
        exact = run_static_experiment(
            build_scenario(CONFIG), steps=2, query_samples=8
        )
        approx = run_static_experiment(
            build_scenario(dataclasses.replace(CONFIG, oracle="landmark:4")),
            steps=2,
            query_samples=8,
        )
        assert as_bytes(exact) != as_bytes(approx)

    def test_landmark_parallel_is_byte_identical_to_serial(self):
        configs = [
            dataclasses.replace(CONFIG, oracle="landmark:8"),
            dataclasses.replace(CONFIG, oracle="landmark:8", avg_degree=8.0),
        ]
        serial = run_static_trials(configs, steps=2, query_samples=6, max_workers=1)
        parallel = run_static_trials(configs, steps=2, query_samples=6, max_workers=2)
        assert [as_bytes(s) for s in serial] == [as_bytes(p) for p in parallel]

    def test_landmark_dynamic_parallel_is_byte_identical_to_serial(self):
        config = dataclasses.replace(CONFIG, oracle="landmark:8")
        arms = [
            (config, DynamicConfig(total_queries=90, window=30, enable_ace=False)),
            (config, DynamicConfig(total_queries=90, window=30)),
        ]
        serial = run_dynamic_trials(arms, max_workers=1)
        parallel = run_dynamic_trials(arms, max_workers=2)
        assert [as_bytes(s) for s in serial] == [as_bytes(p) for p in parallel]

    def test_oracle_stream_is_spawn_stable(self):
        # The oracle draws from seed-stream index 4 (the fifth child).
        # SeedSequence.spawn(5)[:4] == spawn(4) is the property that makes
        # adding the stream safe; pin it so a refactor cannot regress it.
        import numpy as np

        base = [s.generate_state(4).tolist()
                for s in np.random.SeedSequence(CONFIG.seed).spawn(4)]
        wider = [s.generate_state(4).tolist()
                 for s in np.random.SeedSequence(CONFIG.seed).spawn(5)[:4]]
        assert base == wider


class TestEnsureRngFallback:
    def test_fallback_is_deterministic(self):
        a = ensure_rng(None).random(4)
        b = ensure_rng(None).random(4)
        assert list(a) == list(b)

    def test_fallback_uses_default_seed(self):
        import numpy as np

        expected = np.random.default_rng(DEFAULT_SEED).random(4)
        assert list(ensure_rng(None).random(4)) == list(expected)

    def test_explicit_rng_passes_through(self):
        import numpy as np

        rng = np.random.default_rng(42)
        assert ensure_rng(rng) is rng
