"""Tests for typed JSON persistence of experiment results."""

import json

import pytest

from repro.experiments.depth_sweep import DepthSweepResult
from repro.experiments.dynamic_env import DynamicSeries
from repro.experiments.results_io import (
    FORMAT_VERSION,
    from_document,
    load_result,
    save_result,
    to_document,
)
from repro.experiments.static_env import StaticSeries
from repro.metrics.optimization import OptimizationTradeoff
from repro.topology.properties import TopologyReport


def make_static():
    return StaticSeries(
        avg_degree=6.0,
        steps=[0, 1, 2],
        traffic_per_query=[100.0, 80.0, 60.0],
        response_time=[10.0, 9.0, 8.0],
        search_scope=[40.0, 40.0, 40.0],
        step_overhead=[0.0, 5.0, 5.0],
    )


def make_tradeoff(depth=2):
    return OptimizationTradeoff(
        depth=depth,
        avg_degree=6.0,
        baseline_traffic_per_query=100.0,
        optimized_traffic_per_query=55.0,
        overhead_per_reconstruction=20.0,
    )


class TestRoundTrips:
    def test_static_series(self, tmp_path):
        original = make_static()
        path = save_result(original, tmp_path / "static.json")
        restored = load_result(path)
        assert restored == original
        assert restored.traffic_reduction_percent == pytest.approx(40.0)

    def test_dynamic_series(self, tmp_path):
        original = DynamicSeries(
            window=100,
            traffic_points=[3.0, 2.0],
            response_points=[1.0],
            success_points=[1.0, 0.9],
            scope_points=[40.0, 40.0],
            total_queries=200,
            total_overhead=12.0,
            departures=5,
            duration=123.0,
        )
        restored = load_result(save_result(original, tmp_path / "dyn.json"))
        assert restored == original

    def test_tradeoff(self, tmp_path):
        original = make_tradeoff()
        restored = load_result(save_result(original, tmp_path / "t.json"))
        assert restored == original
        assert restored.rate(2.0) == original.rate(2.0)

    def test_depth_sweep(self, tmp_path):
        sweep = DepthSweepResult()
        for c in (4, 10):
            for h in (1, 2):
                sweep.tradeoffs[(c, h)] = make_tradeoff(depth=h)
        restored = load_result(save_result(sweep, tmp_path / "sweep.json"))
        assert restored.tradeoffs == sweep.tradeoffs
        assert restored.degrees() == [4, 10]

    def test_topology_report(self, tmp_path):
        report = TopologyReport(
            num_nodes=10, num_edges=20, average_degree=4.0, max_degree=6,
            power_law_alpha=2.3, clustering=0.4, path_length=2.5,
            small_world_sigma=5.0,
        )
        restored = load_result(save_result(report, tmp_path / "r.json"))
        assert restored == report


class TestDocuments:
    def test_metadata_stored(self, tmp_path):
        path = save_result(
            make_static(), tmp_path / "s.json", metadata={"seed": 7}
        )
        raw = json.loads(path.read_text())
        assert raw["metadata"] == {"seed": 7}
        assert raw["kind"] == "static_series"
        assert raw["format_version"] == FORMAT_VERSION

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="cannot serialize"):
            to_document(object())

    def test_bad_version_rejected(self):
        doc = to_document(make_static())
        doc["format_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            from_document(doc)

    def test_unknown_kind_rejected(self):
        doc = to_document(make_static())
        doc["kind"] = "martian"
        with pytest.raises(ValueError, match="unknown result kind"):
            from_document(doc)

    def test_json_is_plain(self, tmp_path):
        path = save_result(make_static(), tmp_path / "s.json")
        # The document is plain JSON readable by anything.
        data = json.loads(path.read_text())
        assert isinstance(data["data"]["traffic_per_query"], list)
