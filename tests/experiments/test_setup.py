"""Unit tests for experiment scenario construction."""

import numpy as np
import pytest

from repro.experiments.setup import (
    Scenario,
    ScenarioConfig,
    build_scenario,
    repro_scale,
)


SMALL = ScenarioConfig(physical_nodes=200, peers=40, avg_degree=6, seed=5)


class TestBuildScenario:
    def test_builds_world(self):
        sc = build_scenario(SMALL)
        assert sc.physical.num_nodes == 200
        assert sc.overlay.num_peers == 40
        assert sc.overlay.is_connected()
        assert sc.catalog.num_objects > 0

    def test_deterministic(self):
        a = build_scenario(SMALL)
        b = build_scenario(SMALL)
        assert sorted(a.overlay.edges()) == sorted(b.overlay.edges())
        assert sorted(a.physical.edges()) == sorted(b.physical.edges())

    def test_seed_changes_world(self):
        a = build_scenario(SMALL)
        b = build_scenario(ScenarioConfig(
            physical_nodes=200, peers=40, avg_degree=6, seed=6))
        assert sorted(a.overlay.edges()) != sorted(b.overlay.edges())

    def test_degree_change_keeps_underlay(self):
        a = build_scenario(SMALL)
        b = build_scenario(ScenarioConfig(
            physical_nodes=200, peers=40, avg_degree=10, seed=5))
        assert sorted(a.physical.edges()) == sorted(b.physical.edges())

    def test_unknown_underlay(self):
        with pytest.raises(ValueError, match="underlay"):
            build_scenario(ScenarioConfig(underlay="bogus"))

    def test_unknown_overlay_kind(self):
        with pytest.raises(ValueError, match="overlay kind"):
            build_scenario(ScenarioConfig(overlay_kind="bogus"))

    @pytest.mark.parametrize("kind", ["random", "power_law", "small_world"])
    def test_all_overlay_kinds(self, kind):
        sc = build_scenario(ScenarioConfig(
            physical_nodes=200, peers=30, overlay_kind=kind, seed=1))
        assert sc.overlay.num_peers == 30

    @pytest.mark.parametrize("underlay", ["ba", "waxman", "glp", "ws"])
    def test_all_underlays(self, underlay):
        sc = build_scenario(ScenarioConfig(
            physical_nodes=150, peers=25, underlay=underlay, seed=1))
        assert sc.physical.num_nodes == 150


class TestScenarioHelpers:
    def test_fresh_overlay_independent(self):
        sc = build_scenario(SMALL)
        clone = sc.fresh_overlay()
        edge = next(iter(clone.edges()))
        clone.disconnect(*edge)
        assert sc.overlay.has_edge(*edge)

    def test_sample_sources(self):
        sc = build_scenario(SMALL)
        sources = sc.sample_sources(10)
        assert len(sources) == 10
        assert all(sc.overlay.has_peer(s) for s in sources)


class TestScale:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert repro_scale() == 1.0

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert repro_scale() == 2.5

    def test_bad_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zed")
        with pytest.raises(ValueError):
            repro_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            repro_scale()

    def test_scaled_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        scaled = SMALL.scaled()
        assert scaled.physical_nodes == 100
        assert scaled.peers == 20

    def test_scaled_floor(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        scaled = SMALL.scaled(0.001)
        assert scaled.physical_nodes >= 64
        assert scaled.peers >= 16
