"""Tests for the depth sweep and optimization-rate transforms (Figs 11-16)."""

import pytest

from repro.experiments.depth_sweep import (
    DepthSweepConfig,
    DepthSweepResult,
    run_depth_sweep,
)
from repro.experiments.opt_rate import (
    minimal_depths_table,
    rate_vs_depth,
    rate_vs_frequency_ratio,
)
from repro.experiments.setup import ScenarioConfig


@pytest.fixture(scope="module")
def sweep():
    cfg = DepthSweepConfig(
        degrees=(4, 8),
        depths=(1, 2, 3),
        convergence_steps=4,
        query_samples=8,
        base=ScenarioConfig(physical_nodes=250, peers=48, seed=6),
    )
    return run_depth_sweep(cfg)


class TestSweepShape:
    def test_all_combinations_measured(self, sweep):
        assert set(sweep.tradeoffs) == {
            (c, h) for c in (4, 8) for h in (1, 2, 3)
        }
        assert sweep.degrees() == [4, 8]
        assert sweep.depths() == [1, 2, 3]

    def test_for_degree_ordered(self, sweep):
        ts = sweep.for_degree(4)
        assert [t.depth for t in ts] == [1, 2, 3]

    def test_positive_measurements(self, sweep):
        for t in sweep.tradeoffs.values():
            assert t.baseline_traffic_per_query > 0
            assert t.overhead_per_reconstruction > 0


class TestFigure11Claims:
    def test_reduction_positive(self, sweep):
        for t in sweep.tradeoffs.values():
            assert t.reduction_percent > 0

    def test_reduction_grows_with_depth(self, sweep):
        """Deeper closures optimize at least as well (within tolerance)."""
        for degree in (4, 8):
            ts = sweep.for_degree(degree)
            assert ts[-1].reduction_percent >= ts[0].reduction_percent - 5.0

    def test_reduction_grows_with_degree(self, sweep):
        """Figure 11: for a given h the reduction rate increases with C."""
        for h in (1, 2, 3):
            assert (
                sweep.tradeoffs[(8, h)].reduction_percent
                > sweep.tradeoffs[(4, h)].reduction_percent
            )


class TestFigure12Claims:
    def test_overhead_grows_with_depth(self, sweep):
        for degree in (4, 8):
            ts = sweep.for_degree(degree)
            assert ts[-1].overhead_per_reconstruction > ts[0].overhead_per_reconstruction

    def test_overhead_grows_with_degree(self, sweep):
        for h in (1, 2, 3):
            assert (
                sweep.tradeoffs[(8, h)].overhead_per_reconstruction
                > sweep.tradeoffs[(4, h)].overhead_per_reconstruction
            )


class TestRateTransforms:
    def test_rate_vs_depth_series(self, sweep):
        series = rate_vs_depth(sweep, 4, r_values=(1.0, 2.0))
        assert set(series) == {1.0, 2.0}
        assert [h for h, _r in series[1.0]] == [1, 2, 3]

    def test_rate_scales_with_r(self, sweep):
        series = rate_vs_depth(sweep, 4, r_values=(1.0, 2.0))
        for (h1, r1), (h2, r2) in zip(series[1.0], series[2.0]):
            assert h1 == h2
            assert r2 == pytest.approx(2 * r1)

    def test_rate_vs_frequency_ratio_series(self, sweep):
        series = rate_vs_frequency_ratio(sweep, 8, r_values=(1.0, 2.0, 4.0))
        assert set(series) == {1, 2, 3}
        for pts in series.values():
            rates = [rate for _r, rate in pts]
            assert rates == sorted(rates)  # monotone in R

    def test_unknown_degree_raises(self, sweep):
        with pytest.raises(ValueError):
            rate_vs_depth(sweep, 99, r_values=(1.0,))
        with pytest.raises(ValueError):
            rate_vs_frequency_ratio(sweep, 99, r_values=(1.0,))

    def test_unknown_depth_raises(self, sweep):
        with pytest.raises(ValueError):
            rate_vs_frequency_ratio(sweep, 4, r_values=(1.0,), depths=(9,))


class TestMinimalDepthTable:
    def test_table_covers_degrees(self, sweep):
        table = minimal_depths_table(sweep, r_values=(1.0, 50.0))
        assert set(table) == {4, 8}

    def test_r1_is_never_profitable(self, sweep):
        """The paper's Figure 13 claim: at R = 1 ACE never pays off."""
        table = minimal_depths_table(sweep, r_values=(1.0,))
        for degree in (4, 8):
            assert table[degree][1.0] is None

    def test_large_r_profitable(self, sweep):
        table = minimal_depths_table(sweep, r_values=(200.0,))
        for degree in (4, 8):
            assert table[degree][200.0] is not None

    def test_minimal_depth_non_increasing_in_r(self, sweep):
        table = minimal_depths_table(sweep, r_values=(5.0, 50.0, 500.0))
        for degree in (4, 8):
            depths = [
                table[degree][r] if table[degree][r] is not None else 99
                for r in (5.0, 50.0, 500.0)
            ]
            assert depths == sorted(depths, reverse=True)
