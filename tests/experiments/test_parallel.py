"""The unified parallel trial harness: fan-out, perf merging, and leaks.

Pins the contract of :func:`repro.experiments.parallel.run_trials_detailed`:

* results come back in payload order whatever the worker count;
* with ``shared_underlays`` the parent builds each distinct underlay once
  and workers attach it — zero generator calls inside worker trials;
* parent counters after a parallel run equal the parent's own work plus the
  sum of the per-worker snapshots (inline trials are never double-counted);
* no shared-memory segments survive a failed trial.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.experiments.parallel import run_trials, run_trials_detailed
from repro.experiments.setup import (
    ScenarioConfig,
    attach_shared_underlays,
    attached_underlay_count,
    build_scenario,
    build_underlay,
    clear_attached_underlays,
    underlay_key,
)
from repro.perf import counters

CONFIG = ScenarioConfig(physical_nodes=150, peers=24, avg_degree=6, seed=7)

# Accumulating counter fields whose fleet totals must survive the merge.
MERGED_FIELDS = (
    "dijkstra_runs",
    "dijkstra_sources",
    "queries",
    "underlay_builds",
    "underlay_attaches",
)


def _double(x):
    return 2 * x


def _explode(x):
    raise RuntimeError(f"trial {x} failed")


def _scenario_fingerprint(config):
    """A cheap deterministic observation of a built scenario."""
    scenario = build_scenario(config)
    scenario.physical.delays_from(0)
    return (
        config.avg_degree,
        scenario.overlay.num_peers,
        scenario.physical.num_edges,
    )


class TestFanOut:
    def test_inline_preserves_payload_order(self):
        assert run_trials(_double, [1, 2, 3], max_workers=1) == [2, 4, 6]

    def test_parallel_preserves_payload_order(self):
        payloads = list(range(6))
        assert run_trials(_double, payloads, max_workers=2) == [
            2 * p for p in payloads
        ]

    def test_worker_count_is_clamped_to_payloads(self):
        # More workers than payloads must not hang or over-spawn.
        assert run_trials(_double, [5], max_workers=8) == [10]

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            run_trials(_double, [1], max_workers=0)

    def test_parallel_results_equal_inline(self):
        configs = [CONFIG, dataclasses.replace(CONFIG, avg_degree=8.0)]
        inline = run_trials(
            _scenario_fingerprint, configs, shared_underlays=configs, max_workers=1
        )
        parallel = run_trials(
            _scenario_fingerprint, configs, shared_underlays=configs, max_workers=2
        )
        assert inline == parallel


class TestPerfMerging:
    def test_inline_trials_are_not_double_counted(self):
        counters.reset()
        _, snaps = run_trials_detailed(
            _scenario_fingerprint, [CONFIG], max_workers=1
        )
        # The trial incremented the live counters directly; merging its
        # snapshot on top would double every value.
        assert counters.underlay_builds == 1
        assert snaps[0]["underlay_builds"] == 1

    def test_parent_totals_are_parent_work_plus_worker_snapshots(self):
        configs = [CONFIG, dataclasses.replace(CONFIG, avg_degree=8.0)]
        counters.reset()
        _, snaps = run_trials_detailed(
            _scenario_fingerprint, configs, shared_underlays=configs, max_workers=2
        )
        total = counters.snapshot()
        # Both configs share one underlay key, so the parent's only private
        # work is that single export build; everything else came from the
        # merged worker snapshots.
        assert total["underlay_builds"] == 1 + sum(
            s["underlay_builds"] for s in snaps
        )
        for field in MERGED_FIELDS[:-2]:
            assert total[field] == sum(s[field] for s in snaps), field

    def test_workers_attach_instead_of_building(self):
        configs = [CONFIG, dataclasses.replace(CONFIG, avg_degree=8.0)]
        counters.reset()
        _, snaps = run_trials_detailed(
            _scenario_fingerprint, configs, shared_underlays=configs, max_workers=2
        )
        # Zero generator calls inside worker trials; every scenario was
        # served by a lazy zero-copy attach (at most one per process).
        assert sum(s["underlay_builds"] for s in snaps) == 0
        assert 1 <= sum(s["underlay_attaches"] for s in snaps) <= len(configs)
        assert counters.underlay_attaches == sum(
            s["underlay_attaches"] for s in snaps
        )


class TestSharedRegistry:
    def test_registered_handles_attach_lazily_and_once(self):
        physical = build_underlay(CONFIG)
        key = underlay_key(CONFIG)
        with physical.export_shared() as shared:
            try:
                attach_shared_underlays({key: shared.handle})
                assert attached_underlay_count() == 0  # nothing mapped yet
                first = build_scenario(CONFIG)
                assert attached_underlay_count() == 1
                assert first.physical.is_attached
                second = build_scenario(CONFIG)
                # Cached: both scenarios share the one attached instance.
                assert second.physical is first.physical
            finally:
                clear_attached_underlays()

    def test_other_keys_fall_back_to_the_generator(self):
        physical = build_underlay(CONFIG)
        other = dataclasses.replace(CONFIG, seed=CONFIG.seed + 1)
        with physical.export_shared() as shared:
            try:
                attach_shared_underlays({underlay_key(CONFIG): shared.handle})
                scenario = build_scenario(other)
                assert not scenario.physical.is_attached
            finally:
                clear_attached_underlays()


class TestLeakSafety:
    def _live_segments(self):
        root = Path("/dev/shm")
        if not root.is_dir():
            pytest.skip("needs /dev/shm to observe segment lifecycle")
        return {p.name for p in root.iterdir() if p.name.startswith("psm_")}

    def test_no_segments_survive_a_failed_trial(self):
        before = self._live_segments()
        with pytest.raises(RuntimeError, match="failed"):
            run_trials(
                _explode,
                [CONFIG, CONFIG],
                shared_underlays=[CONFIG],
                max_workers=2,
            )
        assert self._live_segments() <= before

    def test_no_segments_survive_a_successful_run(self):
        before = self._live_segments()
        run_trials(
            _scenario_fingerprint,
            [CONFIG],
            shared_underlays=[CONFIG],
            max_workers=2,
        )
        assert self._live_segments() <= before
