"""Tests for the dynamic-environment experiment (Figures 9-10)."""

import pytest

from repro.experiments.dynamic_env import DynamicConfig, run_dynamic_experiment
from repro.experiments.setup import ScenarioConfig, build_scenario

SMALL = ScenarioConfig(physical_nodes=250, peers=40, avg_degree=6, seed=4)


def run(
    enable_ace,
    enable_cache=False,
    total=300,
    window=100,
    seed=4,
    peers=40,
    avg_degree=6,
):
    sc = build_scenario(
        ScenarioConfig(
            physical_nodes=600, peers=peers, avg_degree=avg_degree, seed=seed
        )
    )
    cfg = DynamicConfig(
        total_queries=total,
        window=window,
        enable_ace=enable_ace,
        enable_cache=enable_cache,
    )
    return run_dynamic_experiment(sc, cfg)


class TestConfigValidation:
    def test_rejects_zero_queries(self):
        with pytest.raises(ValueError):
            DynamicConfig(total_queries=0)

    def test_rejects_window_larger_than_total(self):
        with pytest.raises(ValueError):
            DynamicConfig(total_queries=10, window=20)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            DynamicConfig(optimization_interval=0.0)


class TestRunShape:
    def test_window_points(self):
        series = run(enable_ace=False)
        assert series.total_queries == 300
        assert len(series.traffic_points) == 3
        assert series.duration > 0

    def test_churn_happened(self):
        series = run(enable_ace=False)
        assert series.departures > 0

    def test_gnutella_arm_has_no_overhead(self):
        series = run(enable_ace=False)
        assert series.total_overhead == 0.0

    def test_ace_arm_accumulates_overhead(self):
        series = run(enable_ace=True)
        assert series.total_overhead > 0.0

    def test_success_rate_high(self):
        series = run(enable_ace=True)
        assert all(p > 0.85 for p in series.success_points)


class TestPaperClaims:
    """Figure 9/10 claims.

    Protocol overhead is per-peer while query traffic grows with the
    population, so ACE's advantage (overhead included) needs a reasonably
    sized network — the paper uses 8000 peers; 120 suffices for the sign of
    the effect.
    """

    @pytest.fixture(scope="class")
    def arms(self):
        kwargs = dict(total=400, window=100, peers=120, avg_degree=8)
        return {
            "gnutella": run(enable_ace=False, **kwargs),
            "ace": run(enable_ace=True, **kwargs),
            "cached": run(enable_ace=True, enable_cache=True, **kwargs),
        }

    def test_ace_cheaper_than_gnutella_like(self, arms):
        """Figure 9: ACE (overhead included) beats blind flooding."""
        g = sum(arms["gnutella"].traffic_points[2:]) / 2
        a = sum(arms["ace"].traffic_points[2:]) / 2
        assert a < g

    def test_ace_response_time_not_worse(self, arms):
        """Figure 10: response times improve under ACE."""
        assert (
            arms["ace"].response_points[-1]
            < arms["gnutella"].response_points[-1] * 1.1
        )

    def test_cache_reduces_traffic_further(self, arms):
        """Section 5.2: ACE + index cache beats plain ACE."""
        assert arms["cached"].mean_traffic <= arms["ace"].mean_traffic
