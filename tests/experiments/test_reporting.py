"""Unit tests for text reporting."""

import pytest

from repro.experiments.reporting import format_percent, format_series, format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_precision(self):
        text = format_table(["x"], [[3.14159]], precision=3)
        assert "3.142" in text

    def test_none_rendered_as_dash(self):
        text = format_table(["x"], [[None]])
        assert text.splitlines()[-1].strip() == "-"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(["a", "b"], [[1]])

    def test_integers_not_decimalized(self):
        text = format_table(["x"], [[7]])
        assert "7" in text and "7.00" not in text


class TestFormatSeries:
    def test_columns_per_series(self):
        text = format_series(
            "h", [1, 2], {"C=4": [10.0, 20.0], "C=10": [30.0, 40.0]}
        )
        lines = text.splitlines()
        assert "C=4" in lines[0] and "C=10" in lines[0]
        assert "10.00" in lines[2]
        assert "40.00" in lines[3]

    def test_short_series_padded(self):
        text = format_series("x", [1, 2, 3], {"y": [5.0]})
        assert text.splitlines()[-1].strip().endswith("-")


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(42.123) == "42.1%"
        assert format_percent(42.123, precision=2) == "42.12%"
