"""Tests for the static-environment experiment (Figures 7-8)."""

import pytest

from repro.experiments.setup import ScenarioConfig, build_scenario
from repro.experiments.static_env import run_static_experiment


@pytest.fixture(scope="module")
def series():
    sc = build_scenario(
        ScenarioConfig(physical_nodes=300, peers=48, avg_degree=8, seed=2)
    )
    return run_static_experiment(sc, steps=5, query_samples=12)


class TestSeriesShape:
    def test_one_point_per_step_plus_baseline(self, series):
        assert series.steps == [0, 1, 2, 3, 4, 5]
        assert len(series.traffic_per_query) == 6
        assert len(series.response_time) == 6
        assert len(series.search_scope) == 6

    def test_baseline_has_no_overhead(self, series):
        assert series.step_overhead[0] == 0.0
        assert all(o > 0 for o in series.step_overhead[1:])


class TestPaperClaims:
    def test_traffic_reduced(self, series):
        assert series.traffic_per_query[-1] < series.traffic_per_query[0]
        assert series.traffic_reduction_percent > 10.0

    def test_response_time_reduced(self, series):
        assert series.response_time[-1] < series.response_time[0]
        assert series.response_reduction_percent > 0.0

    def test_search_scope_retained(self, series):
        # "while retaining the same search scope": full coverage throughout.
        assert all(s == series.search_scope[0] for s in series.search_scope)

    def test_reductions_computed_from_endpoints(self, series):
        first, last = series.traffic_per_query[0], series.traffic_per_query[-1]
        expected = 100.0 * (first - last) / first
        assert series.traffic_reduction_percent == pytest.approx(expected)


class TestDeterminism:
    def test_same_seed_same_series(self):
        cfg = ScenarioConfig(physical_nodes=200, peers=32, avg_degree=6, seed=11)
        a = run_static_experiment(build_scenario(cfg), steps=2, query_samples=6)
        b = run_static_experiment(build_scenario(cfg), steps=2, query_samples=6)
        assert a.traffic_per_query == b.traffic_per_query
        assert a.response_time == b.response_time
