"""Tests for dynamic-environment internals (churn wiring, series types)."""

import numpy as np
import pytest

# replint: disable=REP003 — white-box test of the churn-wiring internals
from repro.experiments.dynamic_env import (
    DynamicConfig,
    DynamicSeries,
    _build_churn,
    run_dynamic_experiment,
)
from repro.experiments.setup import ScenarioConfig, build_scenario


@pytest.fixture
def scenario():
    return build_scenario(
        ScenarioConfig(physical_nodes=250, peers=30, avg_degree=6, seed=8)
    )


class TestBuildChurn:
    def test_offline_pool_sized_by_fraction(self, scenario):
        config = DynamicConfig(total_queries=10, window=5, offline_fraction=0.5)
        churn = _build_churn(scenario, config, np.random.default_rng(0))
        assert churn.offline_count == 15
        assert churn.online_count == 30

    def test_offline_hosts_disjoint_from_online(self, scenario):
        config = DynamicConfig(total_queries=10, window=5)
        churn = _build_churn(scenario, config, np.random.default_rng(0))
        online_hosts = {
            scenario.overlay.host_of(p) for p in scenario.overlay.peers()
        }
        offline_hosts = {
            rec.host
            for pid, rec in churn.records.items()
            if not scenario.overlay.has_peer(pid)
        }
        assert not online_hosts & offline_hosts

    def test_offline_ids_fresh(self, scenario):
        config = DynamicConfig(total_queries=10, window=5)
        churn = _build_churn(scenario, config, np.random.default_rng(0))
        online = set(scenario.overlay.peers())
        offline = set(churn.records) - online
        assert offline
        assert min(offline) > max(online)


class TestDynamicSeries:
    def test_mean_helpers(self):
        s = DynamicSeries(window=10)
        s.traffic_points = [10.0, 20.0]
        s.response_points = [1.0, 3.0]
        assert s.mean_traffic == pytest.approx(15.0)
        assert s.mean_response == pytest.approx(2.0)

    def test_empty_means(self):
        s = DynamicSeries(window=10)
        assert s.mean_traffic == 0.0
        assert s.mean_response == 0.0


class TestPopulationInvariant:
    def test_population_constant_through_run(self, scenario):
        before = scenario.overlay.num_peers
        run_dynamic_experiment(
            scenario, DynamicConfig(total_queries=150, window=50)
        )
        assert scenario.overlay.num_peers == before

    def test_overlay_stays_connected_enough(self, scenario):
        run_dynamic_experiment(
            scenario, DynamicConfig(total_queries=150, window=50)
        )
        components = scenario.overlay.components()
        # The giant component holds (almost) everyone; stragglers are
        # repaired at the next bootstrap tick.
        assert len(components[0]) >= 0.9 * scenario.overlay.num_peers

    def test_ttl_limited_run(self, scenario):
        series = run_dynamic_experiment(
            scenario,
            DynamicConfig(total_queries=100, window=50, ttl=3),
        )
        # TTL caps the scope below full coverage on a 30-peer overlay only
        # if the overlay is deep enough; the scope must never exceed n.
        assert all(p <= 30 for p in series.scope_points)

    def test_cache_arm_runs(self, scenario):
        series = run_dynamic_experiment(
            scenario,
            DynamicConfig(
                total_queries=100, window=50, enable_cache=True,
                cache_capacity=10,
            ),
        )
        assert series.total_queries == 100
