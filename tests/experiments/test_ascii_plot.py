"""Unit tests for the terminal plotting helpers."""

import pytest

from repro.experiments.ascii_plot import line_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_extremes(self):
        s = sparkline([0, 100, 0])
        assert s[0] == "▁" and s[1] == "█" and s[2] == "▁"

    def test_downsampling(self):
        s = sparkline(list(range(100)), width=10)
        assert len(s) == 10
        # Still monotone after bucketing.
        levels = [("▁▂▃▄▅▆▇█").index(c) for c in s]
        assert levels == sorted(levels)


class TestLineChart:
    def test_empty(self):
        assert line_chart({}) == ""

    def test_height_validation(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, height=1)

    def test_dimensions(self):
        chart = line_chart({"a": [1, 2, 3, 4]}, height=5)
        lines = chart.splitlines()
        assert len(lines) == 5 + 2  # rows + axis + legend
        assert lines[-1].strip().startswith("*=a")

    def test_extremes_on_labels(self):
        chart = line_chart({"a": [0.0, 10.0]}, height=4)
        assert "10" in chart.splitlines()[0]
        assert "0" in chart.splitlines()[3]

    def test_two_series_two_markers(self):
        chart = line_chart({"up": [1, 2, 3], "down": [3, 2, 1]}, height=4)
        assert "*" in chart and "o" in chart
        assert "*=up" in chart and "o=down" in chart

    def test_flat_series_at_bottom(self):
        chart = line_chart({"flat": [2, 2, 2]}, height=3)
        rows = chart.splitlines()
        assert "***" in rows[2]

    def test_width_truncation(self):
        chart = line_chart({"a": list(range(50))}, height=3, width=10)
        first_row = chart.splitlines()[0]
        assert len(first_row) <= 10 + 12  # label + axis + data
