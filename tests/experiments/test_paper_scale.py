"""Tests for paper-scale presets and the run-cost estimator."""

import pytest

from repro.experiments.paper_scale import (
    PAPER_PEERS,
    PAPER_PHYSICAL_NODES,
    PAPER_TOPOLOGY_COUNT,
    estimate_static_run_cost,
    paper_scenario,
    paper_seed_family,
)
from repro.experiments.setup import ScenarioConfig, build_scenario


class TestPresets:
    def test_paper_constants(self):
        assert PAPER_PHYSICAL_NODES == 20_000
        assert PAPER_PEERS == 8_000
        assert PAPER_TOPOLOGY_COUNT == 10

    def test_paper_scenario_fields(self):
        config = paper_scenario(avg_degree=6.0, seed=3)
        assert config.physical_nodes == 20_000
        assert config.peers == 8_000
        assert config.avg_degree == 6.0
        assert config.seed == 3

    def test_scaled_down_scenario_buildable(self):
        # The preset pipeline works end to end at a reduced scale.
        config = paper_scenario(peers=40, physical_nodes=300, seed=1)
        scenario = build_scenario(config)
        assert scenario.overlay.num_peers == 40

    def test_seed_family(self):
        family = paper_seed_family(base_seed=7)
        assert len(family) == 10
        assert len(set(family)) == 10
        assert family[0] == 7


class TestCostEstimate:
    def test_monotone_in_scale(self):
        small = estimate_static_run_cost(
            ScenarioConfig(physical_nodes=1000, peers=100)
        )
        large = estimate_static_run_cost(
            ScenarioConfig(physical_nodes=20000, peers=8000)
        )
        assert large.estimated_seconds > 10 * small.estimated_seconds

    def test_paper_scale_is_substantial(self):
        estimate = estimate_static_run_cost(paper_scenario())
        assert estimate.estimated_seconds > 120  # minutes, not seconds

    def test_format(self):
        estimate = estimate_static_run_cost(
            ScenarioConfig(physical_nodes=1000, peers=100)
        )
        text = estimate.format()
        assert "min" in text and "100 peers" in text
