"""Tests for seed replication, including a real cross-seed paper claim."""

import pytest

from repro.experiments.replication import replicate


class TestReplicateMechanics:
    def test_summaries(self):
        result = replicate(lambda seed: {"x": float(seed)}, seeds=[1, 2, 3])
        summary = result["x"]
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.n == 3
        assert result.seeds == (1, 2, 3)

    def test_multiple_metrics(self):
        result = replicate(
            lambda seed: {"a": seed, "b": 2 * seed}, seeds=[1, 2]
        )
        assert set(result.metrics) == {"a", "b"}
        assert result["b"].mean == pytest.approx(3.0)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            replicate(lambda seed: {"x": 1.0}, seeds=[])

    def test_inconsistent_metrics_rejected(self):
        def flaky(seed):
            return {"x": 1.0} if seed == 1 else {"y": 1.0}

        with pytest.raises(ValueError, match="reported metrics"):
            replicate(flaky, seeds=[1, 2])

    def test_format_renders(self):
        result = replicate(lambda seed: {"metric": seed}, seeds=[1, 2])
        text = result.summary()
        assert "metric" in text and "±" in text and "n=2" in text


class TestCrossSeedPaperClaim:
    def test_static_reductions_positive_on_average(self):
        """Figures 7-8 across seeds: both reductions positive in the mean,
        traffic reduction substantial — robust to seed noise."""
        from repro.experiments.setup import ScenarioConfig, build_scenario
        from repro.experiments.static_env import run_static_experiment

        def experiment(seed):
            scenario = build_scenario(ScenarioConfig(
                physical_nodes=300, peers=48, avg_degree=8, seed=seed
            ))
            series = run_static_experiment(scenario, steps=4, query_samples=10)
            return {
                "traffic_reduction": series.traffic_reduction_percent,
                "response_reduction": series.response_reduction_percent,
            }

        result = replicate(experiment, seeds=[1, 2, 3, 4])
        assert result["traffic_reduction"].mean > 20.0
        assert result["response_reduction"].mean > 0.0
        assert result["traffic_reduction"].minimum > 0.0
