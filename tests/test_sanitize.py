"""Runtime sanitizer tests.

The sanitizer patches classes process-wide, so every test runs its probe
in a subprocess: detection tests assert violations are recorded, and the
byte-identity tests assert a sanitized CLI run's stdout equals the
unsanitized one bit for bit.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")


def run_snippet(code, env_extra=None):
    env = {"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )


def run_cli(args, sanitize=False):
    env_extra = {"REPRO_SANITIZE": "1"} if sanitize else {}
    env = {"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}
    env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )


class TestByteIdentity:
    def test_static_run_is_byte_identical_and_violation_free(self):
        args = ["static", "--peers", "32", "--steps", "2", "--samples", "6"]
        plain = run_cli(args)
        sanitized = run_cli(args, sanitize=True)
        assert plain.returncode == 0
        assert sanitized.returncode == 0
        assert sanitized.stdout == plain.stdout
        assert "sanitize:" not in sanitized.stderr

    def test_dynamic_run_with_ace_is_byte_identical(self):
        args = ["dynamic", "--peers", "28", "--queries", "40",
                "--windows", "2"]
        plain = run_cli(args)
        sanitized = run_cli(args, sanitize=True)
        assert sanitized.returncode == 0
        assert sanitized.stdout == plain.stdout
        assert "sanitize:" not in sanitized.stderr

    def test_dynamic_run_without_ace_is_byte_identical(self):
        args = ["dynamic", "--peers", "28", "--queries", "40",
                "--windows", "2", "--no-ace"]
        plain = run_cli(args)
        sanitized = run_cli(args, sanitize=True)
        assert sanitized.returncode == 0
        assert sanitized.stdout == plain.stdout
        assert "sanitize:" not in sanitized.stderr

    def test_array_engine_is_byte_identical(self):
        args = ["static", "--peers", "32", "--steps", "2", "--samples", "6",
                "--engine", "array"]
        plain = run_cli(args)
        sanitized = run_cli(args, sanitize=True)
        assert sanitized.returncode == 0
        assert sanitized.stdout == plain.stdout
        assert "sanitize:" not in sanitized.stderr


class TestEpochChecks:
    def test_missing_bump_in_subclass_is_detected(self):
        # model a shipped defect: the mutator loses its bump BEFORE the
        # sanitizer installs, so the wrapper wraps the buggy version
        proc = run_snippet("""
from repro.topology.overlay import Overlay

def buggy_connect(self, u, v):  # forgets the epoch bump
    if v in self._adjacency[u]:
        return False
    self._adjacency[u].add(v)
    self._adjacency[v].add(u)
    return True

Overlay.connect = buggy_connect

import repro.sanitize as sanitize
sanitize.install()

from repro.topology.physical import PhysicalTopology

physical = PhysicalTopology(4, [(0, 1), (1, 2), (2, 3)], [1.0, 1.0, 1.0])
overlay = Overlay(physical)
for peer, host in enumerate([0, 1, 2]):
    overlay.add_peer(peer, host)
overlay.connect(0, 1)
assert sanitize.violation_count() == 1, sanitize.violations()
assert "connect" in sanitize.violations()[0]
print("DETECTED")
""")
        assert "DETECTED" in proc.stdout, proc.stdout + proc.stderr

    def test_healthy_overlay_records_nothing(self):
        proc = run_snippet("""
import repro.sanitize as sanitize
sanitize.install()

from repro.topology.physical import PhysicalTopology
from repro.topology.overlay import Overlay

physical = PhysicalTopology(4, [(0, 1), (1, 2), (2, 3)], [1.0, 1.0, 1.0])
overlay = Overlay(physical)
for peer, host in enumerate([0, 1, 2]):
    overlay.add_peer(peer, host)
overlay.connect(0, 1)
overlay.connect(1, 2)
overlay.disconnect(0, 1)
overlay.remove_peer(2)
overlay.invalidate_edge_costs()
assert sanitize.violation_count() == 0, sanitize.violations()
print("CLEAN")
""")
        assert "CLEAN" in proc.stdout, proc.stdout + proc.stderr

    def test_stale_cache_entry_after_disconnect_is_detected(self):
        proc = run_snippet("""
from repro.topology.overlay import Overlay

def stale_disconnect(self, u, v):  # cuts the edge, keeps the cached cost
    if v not in self._adjacency[u]:
        return False
    self._adjacency[u].discard(v)
    self._adjacency[v].discard(u)
    self._epoch += 1
    return True

Overlay.disconnect = stale_disconnect

import repro.sanitize as sanitize
sanitize.install()

from repro.topology.physical import PhysicalTopology

physical = PhysicalTopology(4, [(0, 1), (1, 2), (2, 3)], [1.0, 1.0, 1.0])
overlay = Overlay(physical)
for peer, host in enumerate([0, 1]):
    overlay.add_peer(peer, host)
overlay.connect(0, 1)
overlay.cost(0, 1)  # populate the edge-cost cache
overlay.disconnect(0, 1)
assert any("stale" in v for v in sanitize.violations()), sanitize.violations()
print("DETECTED")
""")
        assert "DETECTED" in proc.stdout, proc.stdout + proc.stderr


class TestShmAccounting:
    def test_leaked_owner_is_reported_at_exit(self):
        proc = run_snippet("""
import repro.sanitize as sanitize
sanitize.install()

import numpy as np
from repro.topology.shm import SharedSegments, export_arrays

segments, specs = export_arrays(
    {"a": np.arange(4, dtype=np.float64)}
)  # replint: disable=REP010 — deliberate leak probe for the sanitizer
owner = SharedSegments(tuple(specs), list(segments))
# never unlinked: the atexit backstop must record the leak
""")
        assert "atexit backstop" in proc.stderr, proc.stdout + proc.stderr

    def test_context_manager_owner_is_clean(self):
        proc = run_snippet("""
import repro.sanitize as sanitize
sanitize.install()

import numpy as np
from repro.topology.shm import SharedSegments, export_arrays

segments, specs = export_arrays({"a": np.arange(4, dtype=np.float64)})
with SharedSegments(tuple(specs), list(segments)):
    pass
assert sanitize.violation_count() == 0, sanitize.violations()
ledger = sanitize.shm_ledger()
assert ledger["created"] == 1 and ledger["unlinked"] == 1
print("CLEAN")
""")
        assert "CLEAN" in proc.stdout, proc.stdout + proc.stderr
        assert "sanitize:" not in proc.stderr


class TestRngLedger:
    def test_duplicate_stream_derivation_is_detected(self):
        proc = run_snippet("""
import repro.sanitize as sanitize
sanitize.install()

from repro.rng import derive_rng

a = derive_rng(7, stream=2)
b = derive_rng(7, stream=2)  # correlated draws: same stream twice
assert sanitize.violation_count() == 1, sanitize.violations()
assert "derived" in sanitize.violations()[0]
print("DETECTED")
""")
        assert "DETECTED" in proc.stdout, proc.stdout + proc.stderr

    def test_draws_are_counted_and_byte_identical(self):
        proc = run_snippet("""
import numpy as np
from repro.rng import derive_rng

plain = derive_rng(7, stream=1).random(5)

import repro.sanitize as sanitize
sanitize.install()
ledgered = derive_rng(7, stream=1).random(5)
assert np.array_equal(plain, ledgered)

key = ("derive", 7, 1)
ledger = sanitize.rng_ledger()
assert ledger[key]["derivations"] == 1
assert ledger[key]["draws"] == 1  # one .random() call
assert sanitize.violation_count() == 0
print("COUNTED")
""")
        assert "COUNTED" in proc.stdout, proc.stdout + proc.stderr

    def test_ensure_rng_fallback_is_ledgered_not_flagged(self):
        proc = run_snippet("""
import repro.sanitize as sanitize
sanitize.install()

from repro.rng import ensure_rng

a = ensure_rng()
b = ensure_rng()  # the sanctioned deterministic fallback: not a violation
assert sanitize.violation_count() == 0, sanitize.violations()
assert sanitize.rng_ledger()[("ensure", 0)]["derivations"] == 2
print("CLEAN")
""")
        assert "CLEAN" in proc.stdout, proc.stdout + proc.stderr


class TestCliIntegration:
    def test_sanitize_flag_enables_and_reports_clean(self):
        proc = run_cli(["static", "--peers", "24", "--steps", "1",
                        "--samples", "4", "--sanitize"])
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "sanitize:" not in proc.stderr

    def test_disabled_by_default(self):
        proc = run_snippet("""
import repro.sanitize as sanitize
assert not sanitize.enabled()
assert not sanitize.maybe_install()
print("OFF")
""")
        assert "OFF" in proc.stdout, proc.stdout + proc.stderr
