"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

import repro
from repro import (
    AceConfig,
    AceProtocol,
    ChurnModel,
    ObjectCatalog,
    WorkloadConfig,
    ace_query,
    ace_strategy,
    barabasi_albert,
    blind_flooding_strategy,
    propagate,
    run_query,
    small_world_overlay,
)


class TestQuickstartFlow:
    """The README quickstart must work exactly as documented."""

    def test_quickstart(self):
        rng = np.random.default_rng(7)
        physical = barabasi_albert(400, m=2, rng=rng)
        overlay = small_world_overlay(physical, 64, avg_degree=6, rng=rng)

        before = propagate(overlay, 0, blind_flooding_strategy(overlay), ttl=None)
        protocol = AceProtocol(overlay, AceConfig(depth=1), rng=rng)
        protocol.run(10)
        after = propagate(overlay, 0, ace_strategy(protocol), ttl=None)

        assert after.reached == before.reached
        assert after.traffic_cost < before.traffic_cost

    def test_public_api_surface(self):
        """Everything advertised in __all__ resolves."""
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestFullPipeline:
    def test_search_quality_improves_under_ace(self):
        rng = np.random.default_rng(11)
        physical = barabasi_albert(500, m=2, rng=rng)
        overlay = small_world_overlay(physical, 80, avg_degree=8, rng=rng)
        catalog = ObjectCatalog(
            overlay.peers(),
            WorkloadConfig(num_objects=60, replicas_per_object=6),
            rng,
        )
        sources = overlay.peers()[:10]

        def measure(strategy):
            traffic, responses = 0.0, []
            for i, src in enumerate(sources):
                holders = catalog.holders_of(i % catalog.num_objects)
                result = run_query(overlay, src, strategy, holders, ttl=None)
                traffic += result.traffic_cost
                if result.first_response_time:
                    responses.append(result.first_response_time)
            return traffic, sum(responses) / len(responses)

        blind_traffic, blind_response = measure(blind_flooding_strategy(overlay))
        protocol = AceProtocol(overlay, rng=np.random.default_rng(11))
        protocol.run(8)
        ace_traffic, ace_response = measure(ace_strategy(protocol))

        assert ace_traffic < 0.7 * blind_traffic
        assert ace_response < blind_response

    def test_churn_with_protocol_round_trip(self, ba_physical):
        """Churn + ACE interleaved keeps the system consistent."""
        rng = np.random.default_rng(13)
        overlay = small_world_overlay(ba_physical, 30, avg_degree=6, rng=rng)
        used = {overlay.host_of(p) for p in overlay.peers()}
        pool = [
            h for h in ba_physical.largest_component_nodes() if h not in used
        ]
        churn = ChurnModel(overlay, {100 + i: pool[i] for i in range(10)}, rng)
        churn.start_initial_sessions(0.0)
        protocol = AceProtocol(overlay, rng=rng)

        for round_idx in range(6):
            protocol.step()
            victim = overlay.peers()[int(rng.integers(overlay.num_peers))]
            protocol.handle_peer_left(victim)
            replacement = churn.depart(victim, now=float(round_idx))
            protocol.handle_peer_joined(replacement)
            churn.repair_isolated()

        assert overlay.num_peers == 30
        assert overlay.is_connected()
        # Query from any peer still reaches everyone.
        src = overlay.peers()[0]
        reached = propagate(overlay, src, ace_strategy(protocol), ttl=None).reached
        assert reached == set(overlay.peers())

    def test_ace_query_on_trace_snapshot(self, ba_physical):
        """The Clip2-style snapshot flows through the same pipeline."""
        from repro import synthesize_gnutella_snapshot

        rng = np.random.default_rng(17)
        overlay = synthesize_gnutella_snapshot(ba_physical, n_peers=60, rng=rng)
        protocol = AceProtocol(overlay, rng=rng)
        protocol.run(3)
        peers = overlay.peers()
        result = ace_query(protocol, peers[0], holders=peers[-5:])
        assert result.success
        assert result.search_scope == 60
