"""Property-based tests for the search baselines and two-tier overlays."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.extensions.hpf import hpf_strategy
from repro.search.expanding_ring import expanding_ring_query
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.random_walk import random_walk_query
from repro.topology.generators import barabasi_albert
from repro.topology.overlay import small_world_overlay

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

world_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=12, max_value=26),
    st.sampled_from([4, 6, 8]),
)


def build_world(seed, n_peers, degree):
    rng = np.random.default_rng(seed)
    physical = barabasi_albert(max(4 * n_peers, 60), m=2, rng=rng)
    return small_world_overlay(physical, n_peers, avg_degree=degree, rng=rng)


class TestRandomWalkProperties:
    @SLOW
    @given(params=world_params, walkers=st.integers(1, 6))
    def test_walk_scope_subset_of_flood_scope(self, params, walkers):
        seed, n_peers, degree = params
        overlay = build_world(seed, n_peers, degree)
        source = overlay.peers()[0]
        flood = propagate(overlay, source, blind_flooding_strategy(overlay), ttl=None)
        walk = random_walk_query(
            overlay, source, [], np.random.default_rng(seed),
            walkers=walkers, max_hops=10,
        )
        assert walk.reached <= flood.reached

    @SLOW
    @given(params=world_params)
    def test_walk_messages_bounded_by_budget(self, params):
        seed, n_peers, degree = params
        overlay = build_world(seed, n_peers, degree)
        walk = random_walk_query(
            overlay, overlay.peers()[0], [], np.random.default_rng(seed),
            walkers=3, max_hops=7, stop_on_hit=False,
        )
        assert walk.messages <= 3 * 7

    @SLOW
    @given(params=world_params)
    def test_arrival_times_lower_bounded_by_metric(self, params):
        seed, n_peers, degree = params
        overlay = build_world(seed, n_peers, degree)
        source = overlay.peers()[0]
        walk = random_walk_query(
            overlay, source, [], np.random.default_rng(seed),
            walkers=4, max_hops=10,
        )
        for peer, t in walk.arrival_time.items():
            # A walk cannot beat the metric shortest path.
            assert t >= overlay.cost(source, peer) - 1e-9


class TestExpandingRingProperties:
    @SLOW
    @given(params=world_params, holder_idx=st.integers(1, 10))
    def test_found_holder_is_real(self, params, holder_idx):
        seed, n_peers, degree = params
        overlay = build_world(seed, n_peers, degree)
        peers = overlay.peers()
        holder = peers[holder_idx % len(peers)]
        source = peers[0]
        if holder == source:
            return
        result = expanding_ring_query(
            overlay, source, blind_flooding_strategy(overlay), [holder]
        )
        # A connected overlay with TTL up to 7 nearly always finds it;
        # when it does, the record must be consistent.
        if result.success:
            assert result.holders_reached == (holder,)
            assert result.ttl_used in (1, 2, 4, 7)
            assert result.first_response_time > 0

    @SLOW
    @given(params=world_params)
    def test_rounds_monotone_in_distance(self, params):
        seed, n_peers, degree = params
        overlay = build_world(seed, n_peers, degree)
        source = overlay.peers()[0]
        strategy = blind_flooding_strategy(overlay)
        flood = propagate(overlay, source, strategy, ttl=None)
        near = min(
            (p for p in flood.hops if p != source), key=lambda p: flood.hops[p]
        )
        far = max(flood.hops, key=lambda p: flood.hops[p])
        near_rounds = expanding_ring_query(overlay, source, strategy, [near]).rounds
        far_rounds = expanding_ring_query(overlay, source, strategy, [far]).rounds
        assert near_rounds <= far_rounds


class TestHpfProperties:
    @SLOW
    @given(
        params=world_params,
        fraction=st.floats(min_value=0.2, max_value=1.0),
    )
    def test_subset_sizes_respect_fraction(self, params, fraction):
        import math

        seed, n_peers, degree = params
        overlay = build_world(seed, n_peers, degree)
        strategy = hpf_strategy(
            overlay, np.random.default_rng(seed), fraction=fraction,
            min_neighbors=1,
        )
        for peer in overlay.peers()[:5]:
            nbrs = overlay.neighbors(peer)
            targets = list(strategy(peer, None))
            assert len(targets) <= len(nbrs)
            assert len(targets) >= min(
                len(nbrs), max(1, math.ceil(fraction * len(nbrs)))
            )

    @SLOW
    @given(params=world_params)
    def test_hpf_traffic_bounded_by_flooding(self, params):
        seed, n_peers, degree = params
        overlay = build_world(seed, n_peers, degree)
        source = overlay.peers()[0]
        flood = propagate(overlay, source, blind_flooding_strategy(overlay), ttl=None)
        partial = propagate(
            overlay, source,
            hpf_strategy(overlay, np.random.default_rng(seed), fraction=0.5),
            ttl=None,
        )
        assert partial.traffic_cost <= flood.traffic_cost + 1e-9


class TestTwoTierProperties:
    @SLOW
    @given(
        seed=st.integers(0, 10_000),
        fraction=st.floats(min_value=0.15, max_value=0.5),
    )
    def test_full_coverage_any_fraction(self, seed, fraction):
        from repro.topology.supernode import build_two_tier, two_tier_query

        rng = np.random.default_rng(seed)
        physical = barabasi_albert(200, m=2, rng=rng)
        tt = build_two_tier(physical, 48, supernode_fraction=fraction, rng=rng)
        assert tt.backbone.is_connected()
        leaf = sorted(tt.leaf_parent)[0]
        result = two_tier_query(tt, leaf, holders=[])
        assert result.search_scope == tt.num_peers
