"""Message-level simulation vs. the analytic query engine.

The experiment drivers use the fast analytic propagation; these tests prove
it agrees *exactly* with a full descriptor-by-descriptor simulation on the
event kernel — scope, per-peer arrival times, query traffic, duplicate
counts and first-response times.
"""

import numpy as np
import pytest

from repro.core.ace import AceProtocol
from repro.search.flooding import blind_flooding_strategy, run_query
from repro.search.tree_routing import ace_strategy
from repro.sim.node import run_message_level_query
from repro.topology.overlay import small_world_overlay
from tests.conftest import make_overlay_from_weighted_edges


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(55)
    from repro.topology.generators import barabasi_albert

    physical = barabasi_albert(250, m=2, rng=rng)
    overlay = small_world_overlay(physical, 40, avg_degree=6, rng=rng)
    return overlay


class TestEquivalenceBlindFlooding:
    @pytest.mark.parametrize("src_idx", [0, 7, 20])
    def test_matches_analytic_engine(self, world, src_idx):
        overlay = world
        source = overlay.peers()[src_idx]
        holders = overlay.peers()[-4:]
        strategy = blind_flooding_strategy(overlay)

        analytic = run_query(overlay, source, strategy, holders, ttl=None)
        message = run_message_level_query(
            overlay, source, strategy, holders, ttl=None
        )

        assert message.reached == analytic.propagation.reached
        assert message.query_traffic == pytest.approx(
            analytic.propagation.traffic_cost
        )
        assert message.query_messages == analytic.propagation.messages
        assert message.duplicates == analytic.propagation.duplicate_messages
        for peer, t in analytic.propagation.arrival_time.items():
            assert message.arrival_time[peer] == pytest.approx(t)
        assert message.first_response_time == pytest.approx(
            analytic.first_response_time
        )

    def test_ttl_equivalence(self, world):
        overlay = world
        source = overlay.peers()[3]
        strategy = blind_flooding_strategy(overlay)
        for ttl in (1, 2, 3):
            analytic = run_query(overlay, source, strategy, [], ttl=ttl)
            message = run_message_level_query(
                overlay, source, strategy, ttl=ttl
            )
            assert message.reached == analytic.propagation.reached


class TestEquivalenceAceRouting:
    def test_matches_analytic_engine(self, world):
        overlay = world.copy()
        protocol = AceProtocol(overlay, rng=np.random.default_rng(5))
        protocol.run(3)
        strategy = ace_strategy(protocol)
        source = overlay.peers()[0]
        holders = overlay.peers()[10:13]

        analytic = run_query(overlay, source, strategy, holders, ttl=None)
        message = run_message_level_query(
            overlay, source, strategy, holders, ttl=None
        )

        assert message.reached == analytic.propagation.reached
        assert message.query_traffic == pytest.approx(
            analytic.propagation.traffic_cost
        )
        assert message.first_response_time == pytest.approx(
            analytic.first_response_time
        )


class TestHitRouting:
    def test_hit_travels_reverse_path(self):
        # Chain 0-1-2: hit from 2 must pass 1 and reach 0 at 2x arrival.
        overlay = make_overlay_from_weighted_edges(
            [(0, 1, 3.0), (1, 2, 4.0)]
        )
        strategy = blind_flooding_strategy(overlay)
        result = run_message_level_query(
            overlay, 0, strategy, holders=[2], ttl=None
        )
        assert result.first_response_time == pytest.approx(14.0)
        assert result.responders == {2}
        assert result.hit_messages == 2  # 2->1 and 1->0
        assert result.hit_traffic == pytest.approx(7.0)

    def test_multiple_responders_first_wins(self):
        overlay = make_overlay_from_weighted_edges(
            [(0, 1, 1.0), (0, 2, 10.0)]
        )
        strategy = blind_flooding_strategy(overlay)
        result = run_message_level_query(
            overlay, 0, strategy, holders=[1, 2], ttl=None
        )
        assert result.first_response_time == pytest.approx(2.0)
        assert result.responders == {1, 2}

    def test_source_holding_object_does_not_respond(self):
        overlay = make_overlay_from_weighted_edges([(0, 1, 1.0)])
        strategy = blind_flooding_strategy(overlay)
        result = run_message_level_query(
            overlay, 0, strategy, holders=[0], ttl=None
        )
        assert result.first_response_time is None


class TestNetworkMechanics:
    def test_dead_link_drops_message(self, world):
        from repro.sim.messages import Ping
        from repro.sim.network import MessageNetwork

        overlay = world.copy()
        network = MessageNetwork(overlay)
        peers = overlay.peers()
        u = peers[0]
        non_neighbor = next(p for p in peers if p != u and not overlay.has_edge(u, p))
        assert network.send(u, non_neighbor, Ping(sender=u)) is False
        assert network.stats.dropped_dead_links == 1
        assert network.stats.messages == 0

    def test_stats_by_kind(self):
        overlay = make_overlay_from_weighted_edges([(0, 1, 2.0)])
        strategy = blind_flooding_strategy(overlay)
        result = run_message_level_query(
            overlay, 0, strategy, holders=[1], ttl=None
        )
        assert result.query_messages == 1
        assert result.hit_messages == 1

    def test_detached_peer_ignores_messages(self):
        from repro.sim.messages import Ping
        from repro.sim.network import MessageNetwork

        overlay = make_overlay_from_weighted_edges([(0, 1, 2.0)])
        network = MessageNetwork(overlay)
        network.send(0, 1, Ping(sender=0))  # no handler attached
        network.run()  # must not raise
        assert network.stats.messages == 1
