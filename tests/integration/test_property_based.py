"""Property-based tests (hypothesis) on the core invariants.

These exercise the DESIGN.md invariants over randomly generated worlds:

* ACE tree routing reaches exactly the blind-flooding scope;
* ACE routing traffic never exceeds blind flooding;
* optimization never disconnects the overlay;
* both Prim variants agree on arbitrary weighted graphs;
* the LRU index cache behaves like a reference model.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ace import AceConfig, AceProtocol
from repro.core.spanning_tree import prim_mst, prim_mst_heap
from repro.search.caching import IndexCache
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy
from repro.topology.overlay import Overlay, small_world_overlay
from repro.topology.physical import PhysicalTopology

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Random world strategies
# ---------------------------------------------------------------------------


def build_world(seed, n_peers, avg_degree):
    rng = np.random.default_rng(seed)
    from repro.topology.generators import barabasi_albert

    physical = barabasi_albert(max(4 * n_peers, 60), m=2, rng=rng)
    overlay = small_world_overlay(
        physical, n_peers, avg_degree=avg_degree, rng=rng
    )
    return overlay


world_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=12, max_value=28),  # peers
    st.sampled_from([4, 6, 8]),  # degree
)


@st.composite
def weighted_graphs(draw):
    """Connected symmetric weighted adjacency maps."""
    n = draw(st.integers(min_value=2, max_value=10))
    g = {i: {} for i in range(n)}
    # Random spanning tree guarantees connectivity.
    for v in range(1, n):
        u = draw(st.integers(min_value=0, max_value=v - 1))
        w = draw(st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
        g[u][v] = w
        g[v][u] = w
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v or v in g[u]:
            continue
        w = draw(st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
        g[u][v] = w
        g[v][u] = w
    return g


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------


class TestSearchScopeInvariant:
    @SLOW
    @given(params=world_params, depth=st.sampled_from([1, 2]))
    def test_ace_routing_preserves_scope(self, params, depth):
        seed, n_peers, degree = params
        overlay = build_world(seed, n_peers, degree)
        protocol = AceProtocol(
            overlay, AceConfig(depth=depth), rng=np.random.default_rng(seed)
        )
        protocol.run(2)
        all_peers = set(overlay.peers())
        for source in overlay.peers()[:3]:
            reached = propagate(
                overlay, source, ace_strategy(protocol), ttl=None
            ).reached
            assert reached == all_peers

    @SLOW
    @given(params=world_params)
    def test_ace_traffic_never_exceeds_blind(self, params):
        seed, n_peers, degree = params
        overlay = build_world(seed, n_peers, degree)
        protocol = AceProtocol(overlay, rng=np.random.default_rng(seed))
        protocol.run(2)
        for source in overlay.peers()[:3]:
            blind = propagate(
                overlay, source, blind_flooding_strategy(overlay), ttl=None
            )
            tree = propagate(overlay, source, ace_strategy(protocol), ttl=None)
            assert tree.traffic_cost <= blind.traffic_cost + 1e-9

    @SLOW
    @given(params=world_params, steps=st.integers(min_value=1, max_value=4))
    def test_optimization_never_disconnects(self, params, steps):
        seed, n_peers, degree = params
        overlay = build_world(seed, n_peers, degree)
        protocol = AceProtocol(overlay, rng=np.random.default_rng(seed))
        protocol.run(steps)
        assert overlay.is_connected()

    @SLOW
    @given(params=world_params)
    def test_costs_form_a_metric(self, params):
        seed, n_peers, degree = params
        overlay = build_world(seed, n_peers, degree)
        peers = overlay.peers()[:6]
        for a in peers:
            for b in peers:
                assert overlay.cost(a, b) == pytest.approx(overlay.cost(b, a))
                for c in peers:
                    assert (
                        overlay.cost(a, c)
                        <= overlay.cost(a, b) + overlay.cost(b, c) + 1e-9
                    )


class TestPrimEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(graph=weighted_graphs(), root_seed=st.integers(0, 100))
    def test_variants_identical(self, graph, root_seed):
        root = sorted(graph)[root_seed % len(graph)]
        a = prim_mst(graph, root)
        b = prim_mst_heap(graph, root)
        assert a.parent == b.parent
        assert a.total_cost == pytest.approx(b.total_cost)

    @settings(max_examples=60, deadline=None)
    @given(graph=weighted_graphs())
    def test_tree_has_n_minus_one_edges(self, graph):
        tree = prim_mst(graph, 0)
        assert len(tree.edges()) == len(graph) - 1


class TestLruCacheModel:
    @settings(max_examples=80, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=6),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "lookup"]),
                st.integers(min_value=0, max_value=9),  # object
                st.integers(min_value=0, max_value=4),  # holder
            ),
            max_size=40,
        ),
    )
    def test_against_reference_model(self, capacity, ops):
        from collections import OrderedDict

        cache = IndexCache(capacity=capacity)
        model = OrderedDict()
        for op, obj, holder in ops:
            if op == "insert":
                cache.insert(obj, holder)
                if obj in model:
                    model.move_to_end(obj)
                model[obj] = holder
                while len(model) > capacity:
                    model.popitem(last=False)
            else:
                expected = model.get(obj)
                if expected is not None:
                    model.move_to_end(obj)
                assert cache.lookup(obj) == expected
        assert len(cache) == len(model)


class TestSeriesCollectorModel:
    @settings(max_examples=80, deadline=None)
    @given(
        window=st.integers(min_value=1, max_value=5),
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            max_size=30,
        ),
    )
    def test_points_are_window_means(self, window, values):
        from repro.metrics.collector import SeriesCollector

        collector = SeriesCollector(window)
        for v in values:
            collector.add(v)
        collector.flush()
        expected = [
            sum(values[i : i + window]) / len(values[i : i + window])
            for i in range(0, len(values), window)
        ]
        assert collector.points == pytest.approx(expected)
