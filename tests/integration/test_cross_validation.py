"""Cross-validation against networkx reference implementations."""

import networkx as nx
import numpy as np
import pytest

from repro.search.flooding import blind_flooding_strategy, propagate
from repro.topology.generators import barabasi_albert
from repro.topology.overlay import small_world_overlay
from repro.topology.properties import (
    characteristic_path_length,
    clustering_coefficient,
)


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(77)
    physical = barabasi_albert(300, m=2, rng=rng)
    overlay = small_world_overlay(physical, 60, avg_degree=6, rng=rng)
    return physical, overlay


class TestShortestPathsAgainstNetworkx:
    def test_underlay_delays(self, world):
        physical, _overlay = world
        g = physical.to_networkx()
        sources = [0, 50, 150]
        for s in sources:
            expected = nx.single_source_dijkstra_path_length(g, s, weight="delay")
            vec = physical.delays_from(s)
            for node, dist in expected.items():
                assert vec[node] == pytest.approx(dist)

    def test_flooding_arrival_times_are_overlay_dijkstra(self, world):
        """Blind flooding explores every path, so the first arrival at a
        peer equals the cost-weighted shortest path in the logical graph."""
        _physical, overlay = world
        g = overlay.to_networkx()
        source = overlay.peers()[0]
        prop = propagate(overlay, source, blind_flooding_strategy(overlay), ttl=None)
        expected = nx.single_source_dijkstra_path_length(g, source, weight="cost")
        for peer, t in prop.arrival_time.items():
            assert t == pytest.approx(expected[peer])

    def test_flooding_hops_are_bfs_levels(self, world):
        """TTL semantics follow hop counts of the first delivery; every
        reached peer's hop count is at least its BFS level."""
        _physical, overlay = world
        g = overlay.to_networkx()
        source = overlay.peers()[0]
        prop = propagate(overlay, source, blind_flooding_strategy(overlay), ttl=None)
        levels = nx.single_source_shortest_path_length(g, source)
        for peer, h in prop.hops.items():
            assert h >= levels[peer]


class TestGraphStatsAgainstNetworkx:
    def test_clustering_coefficient(self, world):
        _physical, overlay = world
        ours = clustering_coefficient(overlay)
        theirs = nx.average_clustering(overlay.to_networkx())
        assert ours == pytest.approx(theirs)

    def test_exact_path_length(self, world):
        _physical, overlay = world
        ours = characteristic_path_length(overlay, samples=overlay.num_peers)
        theirs = nx.average_shortest_path_length(overlay.to_networkx())
        assert ours == pytest.approx(theirs)

    def test_mst_weight_on_closures(self, world):
        from repro.core.closure import neighbor_closure
        from repro.core.spanning_tree import prim_mst_heap

        _physical, overlay = world
        for source in overlay.peers()[:5]:
            closure = neighbor_closure(overlay, source, 2)
            g = nx.Graph()
            for u, nbrs in closure.edges.items():
                for v, c in nbrs.items():
                    g.add_edge(u, v, weight=c)
            expected = sum(
                d["weight"]
                for _u, _v, d in nx.minimum_spanning_edges(g, data=True)
            )
            tree = prim_mst_heap(closure.edges, source)
            assert tree.total_cost == pytest.approx(expected)
