"""Failure injection: lossy links, mid-protocol churn, broken state.

The paper's protocol is "adaptive to the dynamic nature of P2P systems";
these tests stress the implementation beyond the ordinary churn model —
messages vanish, peers leave between protocol phases, routing state goes
stale in adversarial orders — and check that nothing crashes, scope
degrades gracefully, and invariants (connectivity, population) hold.
"""

import numpy as np
import pytest

from repro.core.ace import AceConfig, AceProtocol
from repro.search.flooding import blind_flooding_strategy, propagate
from repro.search.tree_routing import ace_strategy
from repro.sim.network import MessageNetwork
from repro.sim.node import run_message_level_query
from repro.topology.overlay import small_world_overlay


@pytest.fixture
def world(ba_physical):
    return small_world_overlay(
        ba_physical, 36, avg_degree=6, rng=np.random.default_rng(31)
    )


class TestLossyNetwork:
    def test_loss_rate_validation(self, world):
        with pytest.raises(ValueError):
            MessageNetwork(world, loss_rate=1.0)
        with pytest.raises(ValueError):
            MessageNetwork(world, loss_rate=-0.1)

    def test_lossless_by_default(self, world):
        network = MessageNetwork(world)
        assert network.loss_rate == 0.0

    def test_losses_are_charged_but_not_delivered(self, world):
        from repro.sim.messages import Ping

        received = []

        class Recorder:
            def on_message(self, network, message, sender, now):
                received.append(message)

        network = MessageNetwork(
            world, loss_rate=0.5, rng=np.random.default_rng(0)
        )
        peers = world.peers()
        u = peers[0]
        v = next(iter(world.neighbors(u)))
        network.attach(v, Recorder())
        for _ in range(200):
            network.send(u, v, Ping(sender=u))
        network.run()
        assert network.stats.messages == 200
        assert network.stats.lost_messages > 50
        assert len(received) == 200 - network.stats.lost_messages

    def test_flooding_degrades_gracefully_under_loss(self, world):
        strategy = blind_flooding_strategy(world)
        source = world.peers()[0]

        def scope_at(loss):
            network_kwargs = {}
            # run_message_level_query builds its own network; emulate by
            # monkey-level: use MessageNetwork directly via the node API.
            from repro.sim.node import QueryNode

            network = MessageNetwork(
                world, loss_rate=loss, rng=np.random.default_rng(1)
            )
            nodes = {}
            for peer in world.peers():
                node = QueryNode(peer, strategy)
                nodes[peer] = node
                network.attach(peer, node)
            query = nodes[source].start_query(network, "obj", None)
            network.run()
            return sum(
                1 for n in nodes.values() if query.guid in n.first_arrival
            )

        full = scope_at(0.0)
        lossy = scope_at(0.3)
        assert full == world.num_peers
        # Redundant flooding paths absorb much of the loss.
        assert lossy >= 0.5 * full


class TestMidProtocolChurn:
    def test_peer_leaves_between_phases(self, world):
        protocol = AceProtocol(world, rng=np.random.default_rng(2))
        protocol.step()
        # Remove a peer without telling the protocol (worst case).
        victim = world.peers()[0]
        world.remove_peer(victim)
        # Routing from everyone else must not crash and must cover the rest.
        source = world.peers()[0]
        prop = propagate(world, source, ace_strategy(protocol), ttl=None)
        assert victim not in prop.reached
        assert len(prop.reached) >= 0.9 * world.num_peers

    def test_optimizing_after_unannounced_departures(self, world):
        protocol = AceProtocol(world, rng=np.random.default_rng(2))
        protocol.step()
        rng = np.random.default_rng(3)
        for _ in range(4):
            peers = world.peers()
            world.remove_peer(peers[int(rng.integers(len(peers)))])
        report = protocol.step()  # must cope with the shrunken overlay
        assert report.peers_optimized == world.num_peers

    def test_step_with_stale_peer_list(self, world):
        protocol = AceProtocol(world, rng=np.random.default_rng(2))
        stale = world.peers()
        world.remove_peer(stale[0])
        report = protocol.step(peers=stale)
        assert report.peers_optimized == len(stale) - 1


class TestAdversarialStateStaleness:
    def test_all_edges_replaced_under_protocols_feet(self, world):
        protocol = AceProtocol(
            world, AceConfig(shed_redundant=False), rng=np.random.default_rng(4)
        )
        protocol.step()
        # Rewire the overlay into a ring, invalidating every tree.
        for u, v in list(world.edges()):
            world.disconnect(u, v)
        peers = world.peers()
        for i, p in enumerate(peers):
            world.connect(p, peers[(i + 1) % len(peers)])
        # Stale flooding sets must fall back safely: scope still full.
        prop = propagate(world, peers[0], ace_strategy(protocol), ttl=None)
        assert prop.reached == set(peers)

    def test_empty_overlay_after_total_collapse(self, world):
        protocol = AceProtocol(world, rng=np.random.default_rng(4))
        for p in world.peers():
            world.remove_peer(p)
        report = protocol.step()
        assert report.peers_optimized == 0
