"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_static_defaults(self):
        args = build_parser().parse_args(["static"])
        assert args.peers == 128
        assert args.steps == 10
        assert args.depth == 1

    def test_dynamic_flags(self):
        args = build_parser().parse_args(
            ["dynamic", "--cache", "--queries", "120"]
        )
        assert args.cache
        assert args.queries == 120

    def test_depth_lists(self):
        args = build_parser().parse_args(
            ["depth", "--degrees", "4", "8", "--depths", "1", "2"]
        )
        assert args.degrees == [4, 8]
        assert args.depths == [1, 2]

    def test_topology_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["topology", "--underlay", "bogus"])


class TestCommands:
    def run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_walkthrough(self):
        code, text = self.run(["walkthrough", "--depth", "2"])
        assert code == 0
        assert "ace-h2" in text
        assert "duplicates: 0" in text

    def test_walkthrough_blind(self):
        code, text = self.run(["walkthrough"])
        assert code == 0
        assert "blind-flooding" in text

    def test_topology(self):
        code, text = self.run(
            ["topology", "--peers", "40", "--physical-nodes", "200"]
        )
        assert code == 0
        assert "underlay (ba)" in text
        assert "overlay (small_world)" in text

    def test_static_small(self):
        code, text = self.run([
            "static", "--peers", "24", "--physical-nodes", "150",
            "--steps", "2", "--samples", "4",
        ])
        assert code == 0
        assert "traffic reduction" in text
        assert "step" in text

    def test_dynamic_small(self):
        code, text = self.run([
            "dynamic", "--peers", "24", "--physical-nodes", "150",
            "--queries", "60", "--windows", "3",
        ])
        assert code == 0
        assert "gnutella" in text
        assert "ace" in text

    def test_depth_small(self):
        code, text = self.run([
            "depth", "--peers", "24", "--physical-nodes", "150",
            "--degrees", "4", "--depths", "1", "2", "--steps", "2",
        ])
        assert code == 0
        assert "Figure 11" in text
        assert "Minimal depth" in text


class TestJsonOutput:
    def test_static_json(self, tmp_path):
        import io

        from repro.experiments.results_io import load_result
        from repro.experiments.static_env import StaticSeries

        out = io.StringIO()
        path = tmp_path / "static.json"
        code = main([
            "static", "--peers", "24", "--physical-nodes", "150",
            "--steps", "1", "--samples", "4", "--json", str(path),
        ], out=out)
        assert code == 0
        restored = load_result(path)
        assert isinstance(restored, StaticSeries)
        assert len(restored.steps) == 2

    def test_depth_json(self, tmp_path):
        import io

        from repro.experiments.depth_sweep import DepthSweepResult
        from repro.experiments.results_io import load_result

        out = io.StringIO()
        path = tmp_path / "sweep.json"
        code = main([
            "depth", "--peers", "24", "--physical-nodes", "150",
            "--degrees", "4", "--depths", "1", "--steps", "1",
            "--json", str(path),
        ], out=out)
        assert code == 0
        restored = load_result(path)
        assert isinstance(restored, DepthSweepResult)
        assert restored.degrees() == [4]
