"""Shared fixtures: small, fast, deterministic topologies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.generators import barabasi_albert, grid
from repro.topology.overlay import Overlay, small_world_overlay
from repro.topology.physical import PhysicalTopology


@pytest.fixture
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def grid_physical():
    """4x4 grid underlay with uniform link delay 10."""
    return grid(4, 4, delay=10.0)


@pytest.fixture
def line_physical():
    """Five hosts in a line: 0-1-2-3-4, delays 1, 2, 3, 4."""
    return PhysicalTopology(
        5, [(0, 1), (1, 2), (2, 3), (3, 4)], [1.0, 2.0, 3.0, 4.0]
    )


@pytest.fixture
def ba_physical(rng):
    """Small Barabási–Albert underlay (120 hosts)."""
    return barabasi_albert(120, m=2, rng=rng)


@pytest.fixture
def triangle_overlay(grid_physical):
    """Three peers, fully connected, on grid corners.

    Hosts: 0 (corner), 3 (opposite corner of top row), 12 (bottom corner).
    Costs: 0-3: 30, 0-12: 30, 3-12: 60 (grid Manhattan distances x 10).
    """
    ov = Overlay(grid_physical, {0: 0, 1: 3, 2: 12})
    ov.connect(0, 1)
    ov.connect(0, 2)
    ov.connect(1, 2)
    return ov


@pytest.fixture
def small_overlay(ba_physical, rng):
    """40-peer small-world overlay, average degree ~6."""
    return small_world_overlay(ba_physical, 40, avg_degree=6, rng=rng)


def make_overlay_from_weighted_edges(edges):
    """Overlay whose underlay *is* the given weighted logical graph.

    *edges* is an iterable of ``(u, v, delay)``; peers are 0..max id, each on
    its own host.  Logical link costs are underlay shortest paths, so a
    "long" drawn link may cost less than its drawn delay — the mismatch
    situation the paper studies.
    """
    edges = list(edges)
    n = max(max(u, v) for u, v, _ in edges) + 1
    phys = PhysicalTopology(
        n, [(u, v) for u, v, _ in edges], [d for _, _, d in edges]
    )
    ov = Overlay(phys, {i: i for i in range(n)})
    for u, v, _ in edges:
        ov.connect(u, v)
    return ov
